// Serving load benchmark: bursty multi-client traffic against the in-process
// TCP ingestion server (src/net). Each client thread offers an open-loop
// Poisson stream over a real socket; midway through the run every client
// multiplies its rate by `--spike-mult` (default 10x), driving the admission
// layer into overload. The run asserts the robustness contract:
//
//   * the spike sheds with explicit RETRY_AFTER frames — never a crash, a
//     silent drop, or a blocked accept loop;
//   * no client is starved: every client's accepted throughput stays within
//     2x of fair share;
//   * zero accepted-tweet loss: accepted == processed + dead_lettered after
//     the graceful drain;
//   * the end-to-end p99 latency (emd_serving_e2e_latency_seconds) meets
//     `--slo-ms`.
//
// Clients honor RETRY_AFTER with util/retry.h decorrelated jitter: the wait
// before re-offering is max(server hint, Backoff::NextDelayNanos()), so a
// rejected herd never reconverges in lockstep.
//
// The pipeline stage is a deterministic stand-in (SleepFor(service_us) per
// tweet) so the measured latencies reflect admission + queueing behaviour,
// not model cost, and stay stable under sanitizers.
//
//   ./build/bench/bench_serving_load [flags]
//     --clients N        concurrent client threads (default 4)
//     --duration-ms N    total offered-load window (default 3000)
//     --rate N           per-client baseline tweets/sec (default 100)
//     --spike-mult N     rate multiplier during the middle third (default 10)
//     --service-us N     simulated pipeline cost per tweet (default 1000)
//     --slo-ms N         p99 end-to-end latency SLO (default 1500)
//     --seed N           load-generator RNG seed (default 42)
//     --json PATH        write emd-bench-v1 results to PATH

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "util/retry.h"
#include "util/rng.h"

using namespace emd;

namespace {

struct LoadOptions {
  int clients = 4;
  long duration_ms = 3000;
  double rate = 100;       // per-client tweets/sec outside the spike
  double spike_mult = 10;  // rate multiplier during the middle third
  long service_us = 1000;  // simulated pipeline cost per tweet
  long slo_ms = 1500;
  uint64_t seed = 42;
  std::string json_path;
};

struct ClientTotals {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;   // RETRY_AFTER responses received
  uint64_t dropped = 0;    // gave up after max attempts
  uint64_t errors = 0;     // transport-level failures
};

/// One open-loop Poisson client: arrivals are scheduled on the wall clock;
/// a rejected tweet is re-offered after max(server hint, decorrelated
/// jitter) up to 4 attempts.
void RunClient(int index, uint16_t port, const LoadOptions& load,
               ClientTotals* totals) {
  net::ClientOptions options;
  options.port = port;
  options.client_id = "client-" + std::to_string(index);
  Result<net::BlockingClient> client = net::BlockingClient::Connect(options);
  if (!client.ok()) {
    std::fprintf(stderr, "client %d cannot connect: %s\n", index,
                 client.status().ToString().c_str());
    ++totals->errors;
    return;
  }

  Clock* clock = Clock::Real();
  Rng rng(load.seed + static_cast<uint64_t>(index) * 7919);
  RetryPolicy retry_policy;
  retry_policy.initial_backoff_nanos = 2 * kMillisecond;
  retry_policy.max_backoff_nanos = 500 * kMillisecond;
  Backoff backoff(retry_policy, &rng);

  const uint64_t start = clock->NowNanos();
  const uint64_t duration = static_cast<uint64_t>(load.duration_ms) * kMillisecond;
  const uint64_t spike_begin = start + duration / 3;
  const uint64_t spike_end = start + 2 * duration / 3;
  uint64_t next_arrival = start;
  uint64_t seq = 0;

  while (true) {
    const uint64_t now = clock->NowNanos();
    if (now >= start + duration) break;
    if (next_arrival > now) clock->SleepFor(next_arrival - now);

    const bool in_spike = next_arrival >= spike_begin && next_arrival < spike_end;
    const double rate = load.rate * (in_spike ? load.spike_mult : 1.0);
    // Exponential interarrival: -ln(U) / rate.
    const double u = std::max(rng.NextDouble(), 1e-12);
    next_arrival += static_cast<uint64_t>(-std::log(u) / rate * kSecond);

    net::TweetFrame tweet;
    tweet.seq = ++seq;
    tweet.tweet_id = static_cast<uint64_t>(index) * 1000000 + seq;
    tweet.text = "Rockets at Houston stream load tweet " + std::to_string(seq);
    ++totals->submitted;

    bool accepted = false;
    backoff.Reset();
    for (int attempt = 0; attempt < 4; ++attempt) {
      Result<net::SubmitResult> result = client->Submit(tweet);
      if (!result.ok()) {
        ++totals->errors;
        return;  // connection-level failure: the assertions catch it
      }
      if (result->accepted) {
        accepted = true;
        ++totals->accepted;
        break;
      }
      ++totals->rejected;
      const uint64_t hint = uint64_t{result->retry_after_ms} * kMillisecond;
      clock->SleepFor(std::max(hint, backoff.NextDelayNanos()));
    }
    if (!accepted) ++totals->dropped;
  }
  client->Close();
}

bool ParseLong(const char* s, long* out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--clients N] [--duration-ms N] [--rate N] "
               "[--spike-mult N] [--service-us N] [--slo-ms N] [--seed N] "
               "[--json PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions load;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long v = 0;
    if (std::strcmp(arg, "--clients") == 0) {
      if (i + 1 >= argc || !ParseLong(argv[++i], &v) || v <= 0) return Usage(argv[0]);
      load.clients = static_cast<int>(v);
    } else if (std::strcmp(arg, "--duration-ms") == 0) {
      if (i + 1 >= argc || !ParseLong(argv[++i], &v) || v <= 0) return Usage(argv[0]);
      load.duration_ms = v;
    } else if (std::strcmp(arg, "--rate") == 0) {
      if (i + 1 >= argc || !ParseLong(argv[++i], &v) || v <= 0) return Usage(argv[0]);
      load.rate = static_cast<double>(v);
    } else if (std::strcmp(arg, "--spike-mult") == 0) {
      if (i + 1 >= argc || !ParseLong(argv[++i], &v) || v < 1) return Usage(argv[0]);
      load.spike_mult = static_cast<double>(v);
    } else if (std::strcmp(arg, "--service-us") == 0) {
      if (i + 1 >= argc || !ParseLong(argv[++i], &v) || v < 0) return Usage(argv[0]);
      load.service_us = v;
    } else if (std::strcmp(arg, "--slo-ms") == 0) {
      if (i + 1 >= argc || !ParseLong(argv[++i], &v) || v <= 0) return Usage(argv[0]);
      load.slo_ms = v;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (i + 1 >= argc || !ParseLong(argv[++i], &v) || v < 0) return Usage(argv[0]);
      load.seed = static_cast<uint64_t>(v);
    } else if (std::strcmp(arg, "--json") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      load.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return Usage(argv[0]);
    }
  }

  std::printf("serving load: %d clients, %ld ms, %.0f/s per client with a "
              "%.0fx spike in the middle third, %ld us/tweet pipeline\n",
              load.clients, load.duration_ms, load.rate, load.spike_mult,
              load.service_us);

  // Small queue + staging so the spike hits the watermarks quickly; the
  // per-client bucket caps sustained admission at 2x the baseline rate, which
  // both guarantees shedding during a 10x spike and enforces fairness.
  net::ServerOptions options;
  options.queue_capacity = 128;
  options.batch_size = 16;
  options.batch_interval_nanos = 5 * kMillisecond;
  options.admission.staging_capacity = 256;
  options.admission.tokens_per_second = load.rate * 2;
  options.admission.burst_tokens = load.rate / 2;

  Clock* clock = Clock::Real();
  const long service_us = load.service_us;
  net::ServingPipeline pipeline;
  pipeline.process_batch = [clock, service_us](
                               std::span<const AnnotatedTweet> batch) {
    clock->SleepFor(static_cast<uint64_t>(service_us) * kMicrosecond *
                    batch.size());
    return Status::OK();
  };

  net::Server server(std::move(pipeline), options);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::thread serve_thread([&server, &st] { st = server.Serve(); });

  const uint64_t bench_start = clock->NowNanos();
  std::vector<ClientTotals> totals(static_cast<size_t>(load.clients));
  std::vector<std::thread> client_threads;
  client_threads.reserve(totals.size());
  for (int i = 0; i < load.clients; ++i) {
    client_threads.emplace_back(RunClient, i, server.port(), std::cref(load),
                                &totals[static_cast<size_t>(i)]);
  }
  for (std::thread& t : client_threads) t.join();

  server.RequestDrain();
  serve_thread.join();
  const double elapsed_s =
      static_cast<double>(clock->NowNanos() - bench_start) / kSecond;
  if (!st.ok()) {
    std::fprintf(stderr, "serve loop failed: %s\n", st.ToString().c_str());
    return 1;
  }

  ClientTotals sum;
  for (size_t i = 0; i < totals.size(); ++i) {
    const ClientTotals& t = totals[i];
    std::printf("client-%zu: submitted=%llu accepted=%llu rejected=%llu "
                "dropped=%llu errors=%llu\n",
                i, static_cast<unsigned long long>(t.submitted),
                static_cast<unsigned long long>(t.accepted),
                static_cast<unsigned long long>(t.rejected),
                static_cast<unsigned long long>(t.dropped),
                static_cast<unsigned long long>(t.errors));
    sum.submitted += t.submitted;
    sum.accepted += t.accepted;
    sum.rejected += t.rejected;
    sum.dropped += t.dropped;
    sum.errors += t.errors;
  }

  const net::ServerStats& stats = server.stats();
  obs::Histogram* e2e = obs::Metrics().GetHistogram(
      "emd_serving_e2e_latency_seconds");
  const double p50 = e2e->Percentile(0.50);
  const double p95 = e2e->Percentile(0.95);
  const double p99 = e2e->Percentile(0.99);
  std::printf("server: accepted=%llu processed=%llu dead_lettered=%llu "
              "rejected=%llu batches=%llu\n",
              static_cast<unsigned long long>(stats.tweets_accepted),
              static_cast<unsigned long long>(stats.tweets_processed),
              static_cast<unsigned long long>(stats.tweets_dead_lettered),
              static_cast<unsigned long long>(stats.tweets_rejected),
              static_cast<unsigned long long>(stats.batches));
  std::printf("e2e latency: p50=%.1fms p95=%.1fms p99=%.1fms (SLO %ldms)\n",
              p50 * 1e3, p95 * 1e3, p99 * 1e3, load.slo_ms);

  int failures = 0;
  const auto fail = [&failures](const char* what) {
    std::fprintf(stderr, "ASSERTION FAILED: %s\n", what);
    ++failures;
  };

  if (sum.errors != 0) fail("transport errors during the run");
  if (stats.tweets_accepted !=
      stats.tweets_processed + stats.tweets_dead_lettered) {
    fail("zero-loss invariant: accepted != processed + dead_lettered");
  }
  if (sum.rejected == 0) fail("spike never shed (no RETRY_AFTER observed)");
  if (p99 > static_cast<double>(load.slo_ms) / 1e3) fail("p99 e2e SLO missed");

  // Fairness: every client's accepted share within 2x of fair share, both
  // directions. Clients offer identical load, so a starved (or favoured)
  // client is an admission bug, not a workload artifact.
  const double fair_share =
      static_cast<double>(sum.accepted) / static_cast<double>(load.clients);
  for (size_t i = 0; i < totals.size(); ++i) {
    const double share = static_cast<double>(totals[i].accepted);
    if (share * 2 < fair_share || share > fair_share * 2) {
      std::fprintf(stderr,
                   "ASSERTION FAILED: client-%zu accepted %.0f vs fair share "
                   "%.0f (outside 2x)\n",
                   i, share, fair_share);
      ++failures;
    }
  }

  if (!load.json_path.empty()) {
    bench::BenchReporter reporter;
    reporter.Add("serving_load/e2e_p50", static_cast<long>(e2e->count()),
                 p50 * 1e9);
    reporter.Add("serving_load/e2e_p95", static_cast<long>(e2e->count()),
                 p95 * 1e9);
    reporter.Add("serving_load/e2e_p99", static_cast<long>(e2e->count()),
                 p99 * 1e9);
    reporter.Add("serving_load/accepted", static_cast<long>(sum.accepted),
                 elapsed_s * 1e9 / std::max<uint64_t>(sum.accepted, 1),
                 static_cast<double>(sum.accepted) / elapsed_s, "tweets/s");
    reporter.Add("serving_load/shed", static_cast<long>(sum.rejected),
                 elapsed_s * 1e9 / std::max<uint64_t>(sum.rejected, 1),
                 static_cast<double>(sum.rejected) / elapsed_s, "rejects/s");
    if (!reporter.WriteJson(load.json_path)) return 1;
    std::printf("results written to %s\n", load.json_path.c_str());
  }

  if (failures != 0) {
    std::fprintf(stderr, "%d assertion(s) failed\n", failures);
    return 1;
  }
  std::printf("all serving-load assertions passed\n");
  return 0;
}
