// Reproduces Figure 7: "Impact of Frequency on Detecting Entities" — the
// Entity Classifier's recall in recognizing true entities, grouped by the
// candidate's mention frequency in the stream (bins of width 5). The paper
// reports ~56% recall for entities with <=5 mentions, rising quickly with
// frequency.

#include <cstdio>
#include <unordered_set>

#include "bench_common.h"
#include "util/string_util.h"

using namespace emd;
using namespace emd::bench;

int main() {
  FrameworkKit kit;
  const SystemKind kind = SystemKind::kAguilar;

  constexpr int kNumBins = 6;  // [1-5], [6-10], ..., [26+]
  long detected[kNumBins] = {};
  long total[kNumBins] = {};

  std::vector<Dataset> streams;
  streams.push_back(BuildD1(kit.catalog(), kit.suite_options()));
  streams.push_back(BuildD2(kit.catalog(), kit.suite_options()));
  streams.push_back(BuildD3(kit.catalog(), kit.suite_options()));
  streams.push_back(BuildD4(kit.catalog(), kit.suite_options()));

  for (const Dataset& dataset : streams) {
    // Gold surface keys of the stream.
    std::unordered_set<std::string> gold_keys;
    for (const auto& tweet : dataset.tweets) {
      for (const auto& g : tweet.gold) {
        gold_keys.insert(ToLowerAscii(SpanText(tweet.tokens, g.span)));
      }
    }
    Globalizer g(kit.system(kind), kit.phrase_embedder(kind), kit.classifier(kind),
                 {});
    g.Run(dataset).value();
    const CandidateBase& cb = g.candidate_base();
    for (size_t c = 0; c < cb.size(); ++c) {
      if (!cb.Contains(static_cast<int>(c))) continue;
      const CandidateRecord& rec = cb.at(static_cast<int>(c));
      if (!gold_keys.count(rec.key)) continue;  // only true entities
      const int freq = static_cast<int>(rec.mentions.size());
      if (freq <= 0) continue;
      const int bin = std::min(kNumBins - 1, (freq - 1) / 5);
      ++total[bin];
      if (rec.label == CandidateLabel::kEntity) ++detected[bin];
    }
  }

  std::printf("FIGURE 7: Impact of Frequency on Detecting Entities\n");
  std::printf("(Entity Classifier recall on true-entity candidates, by mention "
              "frequency; paper: ~0.56 at <=5, rising to ~1.0)\n");
  std::printf("%-12s %10s %10s %8s\n", "Frequency", "Entities", "Detected",
              "Recall");
  const char* bins[kNumBins] = {"1-5", "6-10", "11-15", "16-20", "21-25", "26+"};
  for (int b = 0; b < kNumBins; ++b) {
    std::printf("%-12s %10ld %10ld %8.3f\n", bins[b], total[b], detected[b],
                total[b] ? static_cast<double>(detected[b]) / total[b] : 0.0);
  }
  return 0;
}
