// Microbenchmarks (google-benchmark) for the Global EMD hot paths: CTrie
// insert/lookup, candidate mention extraction, incremental embedding pooling,
// tokenization, and the syntactic embedder. These quantify the paper's "small
// additional computational overhead" claim at the operation level.
//
// The custom main additionally hand-times the blocked GEMM against the
// pre-optimization naive kernel at 256^3 and writes every result as
// emd-bench-v1 JSON (BENCH_micro.json) via bench::BenchReporter.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "bench_common.h"
#include "core/candidate_base.h"
#include "core/ctrie.h"
#include "core/global_state.h"
#include "core/mention_extractor.h"
#include "core/syntactic_embedder.h"
#include "obs/metrics.h"
#include "nn/kernels/kernels.h"
#include "nn/matrix.h"
#include "stream/datasets.h"
#include "stream/entity_catalog.h"
#include "stream/tweet_generator.h"
#include "text/tweet_tokenizer.h"
#include "util/rng.h"

namespace emd {
namespace {

const EntityCatalog& BenchCatalog() {
  static const EntityCatalog* catalog = [] {
    EntityCatalogOptions opt;
    opt.entities_per_topic = 400;
    opt.seed = 99;
    return new EntityCatalog(EntityCatalog::Build(opt));
  }();
  return *catalog;
}

std::vector<AnnotatedTweet> BenchTweets(int n) {
  TweetGeneratorOptions opt;
  opt.seed = 7;
  TweetGenerator gen(&BenchCatalog(), Topic::kHealth, opt);
  std::vector<AnnotatedTweet> tweets;
  tweets.reserve(n);
  for (int i = 0; i < n; ++i) tweets.push_back(gen.Next());
  return tweets;
}

void BM_CTrieInsert(benchmark::State& state) {
  const auto tweets = BenchTweets(512);
  for (auto _ : state) {
    CTrie trie;
    for (const auto& t : tweets) {
      for (const auto& g : t.gold) trie.Insert(t.tokens, g.span);
    }
    benchmark::DoNotOptimize(trie.num_candidates());
  }
}
BENCHMARK(BM_CTrieInsert);

void BM_CTrieLookup(benchmark::State& state) {
  const auto tweets = BenchTweets(512);
  CTrie trie;
  for (const auto& t : tweets) {
    for (const auto& g : t.gold) trie.Insert(t.tokens, g.span);
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& t = tweets[i++ % tweets.size()];
    int node = trie.root();
    for (const auto& tok : t.tokens) {
      node = trie.Step(node, tok.text);
      if (node == CTrie::kNoNode) node = trie.root();
    }
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_CTrieLookup);

void BM_MentionExtraction(benchmark::State& state) {
  const auto tweets = BenchTweets(static_cast<int>(state.range(0)));
  CTrie trie;
  for (const auto& t : tweets) {
    for (const auto& g : t.gold) trie.Insert(t.tokens, g.span);
  }
  MentionExtractor extractor(&trie);
  for (auto _ : state) {
    size_t found = 0;
    for (const auto& t : tweets) found += extractor.Extract(t.tokens).size();
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * tweets.size());
}
BENCHMARK(BM_MentionExtraction)->Arg(128)->Arg(512)->Arg(2048);

void BM_IncrementalPooling(benchmark::State& state) {
  Rng rng(3);
  std::vector<Mat> embeddings;
  for (int i = 0; i < 64; ++i) {
    Mat e(1, static_cast<int>(state.range(0)));
    e.InitGaussian(&rng, 1.f);
    embeddings.push_back(std::move(e));
  }
  for (auto _ : state) {
    CandidateBase base;
    base.GetOrCreate(0, "bench", 2);
    for (const auto& e : embeddings) base.AddMention(0, {}, e);
    benchmark::DoNotOptimize(base.at(0).GlobalEmbedding());
  }
}
BENCHMARK(BM_IncrementalPooling)->Arg(6)->Arg(100)->Arg(300);

void BM_TweetTokenize(benchmark::State& state) {
  const auto tweets = BenchTweets(256);
  TweetTokenizer tokenizer;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(tweets[i++ % tweets.size()].text));
  }
}
BENCHMARK(BM_TweetTokenize);

void BM_SyntacticEmbedding(benchmark::State& state) {
  const auto tweets = BenchTweets(256);
  size_t i = 0;
  for (auto _ : state) {
    const auto& t = tweets[i++ % tweets.size()];
    if (t.gold.empty()) continue;
    benchmark::DoNotOptimize(SyntacticEmbedding(t.tokens, t.gold[0].span));
  }
}
BENCHMARK(BM_SyntacticEmbedding);

// The pre-blocking MatMul (naive i-k-j with the branchy zero-skip), kept as
// the baseline the blocked kernel is measured against.
Mat NaiveMatMul(const Mat& a, const Mat& b) {
  Mat c(a.rows(), b.cols());
  c.Zero();
  const int n = b.cols();
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const float av = a(i, k);
      if (av == 0.f) continue;
      for (int j = 0; j < n; ++j) c(i, j) += av * b(k, j);
    }
  }
  return c;
}

/// Collects every google-benchmark run into a BenchReporter while still
/// printing the familiar console table.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(bench::BenchReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time * 1e9 / run.iterations
              : 0;
      double throughput = 0;
      std::string unit;
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        throughput = it->second;
        unit = "items/sec";
      }
      out_->Add(run.benchmark_name(), static_cast<long>(run.iterations),
                ns_per_op, throughput, unit);
    }
  }

 private:
  bench::BenchReporter* out_;
};

void RunGemmComparison(bench::BenchReporter* reporter, int n, int reps) {
  Rng rng(5);
  Mat a(n, n), b(n, n), blocked(n, n), dispatched(n, n);
  a.InitGaussian(&rng, 1.f);
  b.InitGaussian(&rng, 1.f);
  const double flops = 2.0 * n * n * n;
  const kernels::KernelBackend& scalar = kernels::ScalarKernels();
  const kernels::KernelBackend& active = kernels::Kernels();

  double naive_best = 1e100, blocked_best = 1e100, dispatch_best = 1e100;
  Mat naive;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    naive = NaiveMatMul(a, b);
    naive_best = std::min(
        naive_best,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    start = std::chrono::steady_clock::now();
    scalar.matmul(a.data(), b.data(), blocked.data(), n, n, n);
    blocked_best = std::min(
        blocked_best,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    start = std::chrono::steady_clock::now();
    active.matmul(a.data(), b.data(), dispatched.data(), n, n, n);
    dispatch_best = std::min(
        dispatch_best,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  // Same ascending-k accumulation order per output element => bit-identical.
  if (std::memcmp(naive.data(), blocked.data(),
                  sizeof(float) * n * n) != 0) {
    std::fprintf(stderr, "FAIL: blocked GEMM diverges from naive at %d^3\n", n);
    std::exit(1);
  }
  // The vectorized kernel reassociates the k-reduction (FMA lanes), so check
  // it against the exact result to a float-accumulation tolerance instead.
  float max_abs = 0.f, max_diff = 0.f;
  for (size_t i = 0; i < naive.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(naive.data()[i]));
    max_diff = std::max(max_diff,
                        std::fabs(naive.data()[i] - dispatched.data()[i]));
  }
  if (max_diff > 1e-4f * std::max(1.f, max_abs)) {
    std::fprintf(stderr, "FAIL: %s GEMM diverges from naive at %d^3 (%g)\n",
                 active.name, n, max_diff);
    std::exit(1);
  }
  std::printf(
      "gemm %d^3: naive %.2f GFLOP/s, blocked %.2f GFLOP/s (x%.2f), "
      "dispatch[%s] %.2f GFLOP/s (x%.2f vs blocked)\n",
      n, flops / naive_best / 1e9, flops / blocked_best / 1e9,
      naive_best / blocked_best, active.name, flops / dispatch_best / 1e9,
      blocked_best / dispatch_best);
  reporter->Add("gemm_naive/" + std::to_string(n), reps, naive_best * 1e9,
                flops / naive_best / 1e9, "GFLOP/s");
  reporter->Add("gemm_blocked/" + std::to_string(n), reps, blocked_best * 1e9,
                flops / blocked_best / 1e9, "GFLOP/s");
  reporter->Add("gemm_dispatch/" + std::to_string(n), reps, dispatch_best * 1e9,
                flops / dispatch_best / 1e9, "GFLOP/s");
}

// int8 quantized GEMM vs the dispatched fp32 GEMM at the layer shapes the
// pipeline actually issues (attention projections, FFN up/down, classifier
// hidden), plus one large square as a roofline reference. Weights are
// pre-quantized outside the timed loop (that is what the models do at
// load time); activations are quantized per call (dynamic quantization is
// part of the int8 inference cost and is timed).
void RunQuantComparison(bench::BenchReporter* reporter, int reps) {
  struct Shape {
    const char* tag;
    int m, k, n;
  };
  const Shape shapes[] = {
      {"attn_proj", 32, 64, 64},    // [tokens, d_model] x [d_model, d_model]
      {"ffn_up", 32, 64, 128},      // [tokens, d_model] x [d_model, d_ff]
      {"ffn_down", 32, 128, 64},    // [tokens, d_ff] x [d_ff, d_model]
      {"classifier", 64, 44, 32},   // [candidates, feat] x [feat, hidden]
      {"square", 256, 256, 256},
  };
  const kernels::KernelBackend& fp32 = kernels::Kernels();
  const kernels::KernelBackend& scalar = kernels::ScalarKernels();
  const kernels::QuantizedBackend& q8 = kernels::Int8Kernels();
  Rng rng(11);
  for (const Shape& s : shapes) {
    Mat a(s.m, s.k), b(s.k, s.n), c32(s.m, s.n), c8(s.m, s.n);
    a.InitGaussian(&rng, 1.f);
    b.InitGaussian(&rng, 0.2f);
    // Pre-quantize weights per output channel: wt is b transposed, [n, k].
    std::vector<std::int8_t> wt8(static_cast<size_t>(s.n) * s.k);
    std::vector<float> w_scales(s.n);
    {
      Mat bt(s.n, s.k);
      for (int kk = 0; kk < s.k; ++kk)
        for (int j = 0; j < s.n; ++j) bt(j, kk) = b(kk, j);
      q8.quantize_rows(bt.data(), s.n, s.k, wt8.data(), w_scales.data());
    }
    std::vector<std::int8_t> a8(static_cast<size_t>(s.m) * s.k);
    std::vector<float> a_scales(s.m);
    const double flops = 2.0 * s.m * s.k * s.n;
    double fp32_best = 1e100, scalar_best = 1e100, int8_best = 1e100;
    for (int r = 0; r < reps; ++r) {
      auto start = std::chrono::steady_clock::now();
      fp32.matmul(a.data(), b.data(), c32.data(), s.m, s.k, s.n);
      fp32_best = std::min(
          fp32_best, std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count());
      start = std::chrono::steady_clock::now();
      scalar.matmul(a.data(), b.data(), c32.data(), s.m, s.k, s.n);
      scalar_best = std::min(
          scalar_best, std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count());
      start = std::chrono::steady_clock::now();
      q8.quantize_rows(a.data(), s.m, s.k, a8.data(), a_scales.data());
      q8.qgemm(a8.data(), a_scales.data(), wt8.data(), w_scales.data(),
               nullptr, c8.data(), s.m, s.k, s.n);
      int8_best = std::min(
          int8_best, std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count());
    }
    // Accuracy check: symmetric 8-bit quantization of both operands bounds
    // each output by ~(maxabs_a * maxabs_w_row / 127) per accumulated term.
    float max_abs = 0.f, max_diff = 0.f;
    for (size_t i = 0; i < c32.size(); ++i) {
      max_abs = std::max(max_abs, std::fabs(c32.data()[i]));
      max_diff =
          std::max(max_diff, std::fabs(c32.data()[i] - c8.data()[i]));
    }
    if (max_diff > 0.05f * std::max(1.f, max_abs)) {
      std::fprintf(stderr, "FAIL: int8 GEMM diverges at %s (%g vs %g)\n",
                   s.tag, max_diff, max_abs);
      std::exit(1);
    }
    std::printf(
        "qgemm %s (%dx%dx%d): fp32[%s] %.2f GFLOP/s, fp32[scalar] %.2f "
        "GFLOP/s, int8[%s] %.2f GFLOP/s (x%.2f vs dispatch, x%.2f vs "
        "scalar), max err %.4f\n",
        s.tag, s.m, s.k, s.n, fp32.name, flops / fp32_best / 1e9,
        flops / scalar_best / 1e9, q8.name, flops / int8_best / 1e9,
        fp32_best / int8_best, scalar_best / int8_best, max_diff);
    const std::string dims = std::string(s.tag) + "/" + std::to_string(s.m) +
                             "x" + std::to_string(s.k) + "x" +
                             std::to_string(s.n);
    reporter->Add("qgemm_fp32/" + dims, reps, fp32_best * 1e9,
                  flops / fp32_best / 1e9, "GFLOP/s");
    reporter->Add("qgemm_fp32_scalar/" + dims, reps, scalar_best * 1e9,
                  flops / scalar_best / 1e9, "GFLOP/s");
    reporter->Add("qgemm_int8/" + dims, reps, int8_best * 1e9,
                  flops / int8_best / 1e9, "GFLOP/s");
  }
  reporter->Add(std::string("quant_backend/") + q8.name, 1, 0, 0, "");
}

// Candidate re-scan: legacy lockstep matcher vs the interned-symbol matcher
// over the identical sharded state (DESIGN §12). Both scans must extract the
// identical mention set; the JSON records tokens/sec and steps/token per
// matcher so the emd-bench-v1 trajectory captures the win. `min_speedup` > 0
// gates interned >= min_speedup x legacy (the --scan-only CI smoke).
void RunScanComparison(bench::BenchReporter* reporter, int num_candidates,
                       int shards, int reps, double min_speedup) {
  Rng rng(23);
  // Word pool: enough distinct words that 1-3 word phrases stay mostly
  // unique, small enough that tweets revisit candidate vocabulary often.
  const int vocab_size = std::max(1000, num_candidates / 3);
  std::vector<std::string> vocab(vocab_size);
  for (int i = 0; i < vocab_size; ++i) {
    std::string w;
    for (int v = i;; v = v / 26 - 1) {
      w += static_cast<char>('a' + v % 26);
      if (v < 26) break;
    }
    vocab[i] = w + std::to_string(i % 97);
  }

  // Identical candidate sets in both states (Insert dedups, so draw phrases
  // until the target count registers).
  ShardedGlobalState legacy(shards, ShardedGlobalState::MatcherKind::kLegacy);
  ShardedGlobalState interned(shards,
                              ShardedGlobalState::MatcherKind::kInterned);
  std::vector<std::vector<std::string>> phrases;
  while (legacy.num_candidates() < num_candidates) {
    std::vector<std::string> phrase(static_cast<size_t>(rng.NextInt(1, 3)));
    for (auto& w : phrase) w = vocab[rng.NextU64(vocab.size())];
    const int before = legacy.num_candidates();
    legacy.Insert(phrase);
    if (legacy.num_candidates() > before) {
      interned.Insert(phrase);
      phrases.push_back(std::move(phrase));
    }
  }

  // Tweets: injected candidate phrases (some with uppercase surface forms)
  // between in-vocabulary noise and out-of-vocabulary tokens.
  const size_t num_tweets = 512;
  const size_t tweet_len = 24;
  std::vector<std::vector<Token>> tweets(num_tweets);
  size_t total_tokens = 0;
  for (auto& tweet : tweets) {
    while (tweet.size() < tweet_len) {
      const double dice = rng.NextDouble();
      if (dice < 0.25) {
        const auto& phrase = phrases[rng.NextU64(phrases.size())];
        const bool capitalize = rng.NextBernoulli(0.5);
        for (const auto& w : phrase) {
          tweet.push_back({capitalize ? ToUpperAscii(w) : w});
        }
      } else if (dice < 0.85) {
        tweet.push_back({vocab[rng.NextU64(vocab.size())]});
      } else {
        tweet.push_back({"oov" + std::to_string(rng.NextU64(1u << 20))});
      }
    }
    tweet.resize(tweet_len);
    total_tokens += tweet.size();
  }

  obs::Counter* steps = obs::Metrics().GetCounter("emd_extract_steps_total");
  auto run_scan = [&](const ShardedGlobalState& state, double* steps_per_token,
                      std::vector<std::vector<ExtractedMention>>* outs) {
    ShardedGlobalState::ScanScratch scratch;
    outs->resize(tweets.size());
    double best = 1e100;
    uint64_t steps_before = 0, steps_after = 0;
    for (int r = 0; r < reps; ++r) {
      steps_before = steps->value();
      const auto start = std::chrono::steady_clock::now();
      for (size_t t = 0; t < tweets.size(); ++t) {
        state.ExtractInto(tweets[t], &scratch, &(*outs)[t]);
      }
      steps_after = steps->value();
      best = std::min(
          best, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count());
    }
    *steps_per_token =
        static_cast<double>(steps_after - steps_before) / total_tokens;
    return best;
  };

  double legacy_spt = 0, interned_spt = 0;
  std::vector<std::vector<ExtractedMention>> legacy_out, interned_out;
  const double legacy_best = run_scan(legacy, &legacy_spt, &legacy_out);
  const double interned_best = run_scan(interned, &interned_spt, &interned_out);

  // Bit-identity gate: the two matchers must extract the same mention set.
  size_t mentions = 0;
  for (size_t t = 0; t < tweets.size(); ++t) {
    if (legacy_out[t].size() != interned_out[t].size()) {
      std::fprintf(stderr, "FAIL: scan mention count diverges on tweet %zu\n",
                   t);
      std::exit(1);
    }
    for (size_t m = 0; m < legacy_out[t].size(); ++m) {
      if (!(legacy_out[t][m].span == interned_out[t][m].span) ||
          legacy_out[t][m].candidate_id != interned_out[t][m].candidate_id) {
        std::fprintf(stderr, "FAIL: scan mention %zu diverges on tweet %zu\n",
                     m, t);
        std::exit(1);
      }
    }
    mentions += legacy_out[t].size();
  }

  const double legacy_tps = total_tokens / legacy_best;
  const double interned_tps = total_tokens / interned_best;
  const double speedup = legacy_best / interned_best;
  std::printf(
      "scan %dk cand / %d shards (%zu mentions): legacy %.2fM tok/s "
      "(%.1f steps/tok), interned %.2fM tok/s (%.2f steps/tok), x%.2f\n",
      num_candidates / 1000, shards, mentions, legacy_tps / 1e6, legacy_spt,
      interned_tps / 1e6, interned_spt, speedup);

  const std::string dims =
      std::to_string(num_candidates) + "x" + std::to_string(shards);
  reporter->Add("scan_legacy/" + dims, reps, legacy_best * 1e9, legacy_tps,
                "tokens/sec");
  reporter->Add("scan_interned/" + dims, reps, interned_best * 1e9,
                interned_tps, "tokens/sec");
  reporter->Add("scan_steps_per_token_legacy/" + dims, reps, 0, legacy_spt,
                "steps/token");
  reporter->Add("scan_steps_per_token_interned/" + dims, reps, 0, interned_spt,
                "steps/token");
  reporter->Add("scan_speedup/" + dims, reps, 0, speedup, "x");

  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: interned scan speedup x%.2f below gate x%.2f at %s\n",
                 speedup, min_speedup, dims.c_str());
    std::exit(1);
  }
}

}  // namespace
}  // namespace emd

int main(int argc, char** argv) {
  // --gemm-only / --quant-only / --scan-only (ours, not google-benchmark's)
  // skip the microbenchmark sweep so CI's backend-comparison smokes stay
  // fast; strip them before Initialize.
  bool gemm_only = false;
  bool quant_only = false;
  bool scan_only = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gemm-only") == 0) {
      gemm_only = true;
      continue;
    }
    if (std::strcmp(argv[i], "--quant-only") == 0) {
      quant_only = true;
      continue;
    }
    if (std::strcmp(argv[i], "--scan-only") == 0) {
      scan_only = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  emd::bench::BenchReporter reporter;
  emd::CapturingReporter console(&reporter);
  const bool full = !gemm_only && !quant_only && !scan_only;
  if (full) benchmark::RunSpecifiedBenchmarks(&console);
  if (scan_only) {
    // CI scan smoke: the interned matcher must hold >= 2x legacy tokens/sec
    // at the ISSUE-10 reference point (100k candidates / 13 shards).
    emd::RunScanComparison(&reporter, 100000, 13, 5, 2.0);
  } else if (full) {
    emd::RunScanComparison(&reporter, 20000, 13, 3, 0.0);
  }
  if (full || gemm_only) emd::RunGemmComparison(&reporter, 256, 3);
  if (full || quant_only) emd::RunQuantComparison(&reporter, 5);
  // Machine-readable record of the resolved dispatch selection.
  reporter.Add(std::string("kernel_backend/") + emd::kernels::BackendName(), 1,
               0, 0, "");
  if (!reporter.WriteJson("BENCH_micro.json")) return 1;
  std::printf("wrote BENCH_micro.json\n");
  return 0;
}
