// Microbenchmarks (google-benchmark) for the Global EMD hot paths: CTrie
// insert/lookup, candidate mention extraction, incremental embedding pooling,
// tokenization, and the syntactic embedder. These quantify the paper's "small
// additional computational overhead" claim at the operation level.

#include <benchmark/benchmark.h>

#include "core/candidate_base.h"
#include "core/ctrie.h"
#include "core/mention_extractor.h"
#include "core/syntactic_embedder.h"
#include "stream/datasets.h"
#include "stream/entity_catalog.h"
#include "stream/tweet_generator.h"
#include "text/tweet_tokenizer.h"
#include "util/rng.h"

namespace emd {
namespace {

const EntityCatalog& BenchCatalog() {
  static const EntityCatalog* catalog = [] {
    EntityCatalogOptions opt;
    opt.entities_per_topic = 400;
    opt.seed = 99;
    return new EntityCatalog(EntityCatalog::Build(opt));
  }();
  return *catalog;
}

std::vector<AnnotatedTweet> BenchTweets(int n) {
  TweetGeneratorOptions opt;
  opt.seed = 7;
  TweetGenerator gen(&BenchCatalog(), Topic::kHealth, opt);
  std::vector<AnnotatedTweet> tweets;
  tweets.reserve(n);
  for (int i = 0; i < n; ++i) tweets.push_back(gen.Next());
  return tweets;
}

void BM_CTrieInsert(benchmark::State& state) {
  const auto tweets = BenchTweets(512);
  for (auto _ : state) {
    CTrie trie;
    for (const auto& t : tweets) {
      for (const auto& g : t.gold) trie.Insert(t.tokens, g.span);
    }
    benchmark::DoNotOptimize(trie.num_candidates());
  }
}
BENCHMARK(BM_CTrieInsert);

void BM_CTrieLookup(benchmark::State& state) {
  const auto tweets = BenchTweets(512);
  CTrie trie;
  for (const auto& t : tweets) {
    for (const auto& g : t.gold) trie.Insert(t.tokens, g.span);
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& t = tweets[i++ % tweets.size()];
    int node = trie.root();
    for (const auto& tok : t.tokens) {
      node = trie.Step(node, tok.text);
      if (node == CTrie::kNoNode) node = trie.root();
    }
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_CTrieLookup);

void BM_MentionExtraction(benchmark::State& state) {
  const auto tweets = BenchTweets(static_cast<int>(state.range(0)));
  CTrie trie;
  for (const auto& t : tweets) {
    for (const auto& g : t.gold) trie.Insert(t.tokens, g.span);
  }
  MentionExtractor extractor(&trie);
  for (auto _ : state) {
    size_t found = 0;
    for (const auto& t : tweets) found += extractor.Extract(t.tokens).size();
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * tweets.size());
}
BENCHMARK(BM_MentionExtraction)->Arg(128)->Arg(512)->Arg(2048);

void BM_IncrementalPooling(benchmark::State& state) {
  Rng rng(3);
  std::vector<Mat> embeddings;
  for (int i = 0; i < 64; ++i) {
    Mat e(1, static_cast<int>(state.range(0)));
    e.InitGaussian(&rng, 1.f);
    embeddings.push_back(std::move(e));
  }
  for (auto _ : state) {
    CandidateBase base;
    base.GetOrCreate(0, "bench", 2);
    for (const auto& e : embeddings) base.AddMention(0, {}, e);
    benchmark::DoNotOptimize(base.at(0).GlobalEmbedding());
  }
}
BENCHMARK(BM_IncrementalPooling)->Arg(6)->Arg(100)->Arg(300);

void BM_TweetTokenize(benchmark::State& state) {
  const auto tweets = BenchTweets(256);
  TweetTokenizer tokenizer;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(tweets[i++ % tweets.size()].text));
  }
}
BENCHMARK(BM_TweetTokenize);

void BM_SyntacticEmbedding(benchmark::State& state) {
  const auto tweets = BenchTweets(256);
  size_t i = 0;
  for (auto _ : state) {
    const auto& t = tweets[i++ % tweets.size()];
    if (t.gold.empty()) continue;
    benchmark::DoNotOptimize(SyntacticEmbedding(t.tokens, t.gold[0].span));
  }
}
BENCHMARK(BM_SyntacticEmbedding);

}  // namespace
}  // namespace emd

BENCHMARK_MAIN();
