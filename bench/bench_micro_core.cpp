// Microbenchmarks (google-benchmark) for the Global EMD hot paths: CTrie
// insert/lookup, candidate mention extraction, incremental embedding pooling,
// tokenization, and the syntactic embedder. These quantify the paper's "small
// additional computational overhead" claim at the operation level.
//
// The custom main additionally hand-times the blocked GEMM against the
// pre-optimization naive kernel at 256^3 and writes every result as
// emd-bench-v1 JSON (BENCH_micro.json) via bench::BenchReporter.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "bench_common.h"
#include "core/candidate_base.h"
#include "core/ctrie.h"
#include "core/mention_extractor.h"
#include "core/syntactic_embedder.h"
#include "nn/kernels/kernels.h"
#include "nn/matrix.h"
#include "stream/datasets.h"
#include "stream/entity_catalog.h"
#include "stream/tweet_generator.h"
#include "text/tweet_tokenizer.h"
#include "util/rng.h"

namespace emd {
namespace {

const EntityCatalog& BenchCatalog() {
  static const EntityCatalog* catalog = [] {
    EntityCatalogOptions opt;
    opt.entities_per_topic = 400;
    opt.seed = 99;
    return new EntityCatalog(EntityCatalog::Build(opt));
  }();
  return *catalog;
}

std::vector<AnnotatedTweet> BenchTweets(int n) {
  TweetGeneratorOptions opt;
  opt.seed = 7;
  TweetGenerator gen(&BenchCatalog(), Topic::kHealth, opt);
  std::vector<AnnotatedTweet> tweets;
  tweets.reserve(n);
  for (int i = 0; i < n; ++i) tweets.push_back(gen.Next());
  return tweets;
}

void BM_CTrieInsert(benchmark::State& state) {
  const auto tweets = BenchTweets(512);
  for (auto _ : state) {
    CTrie trie;
    for (const auto& t : tweets) {
      for (const auto& g : t.gold) trie.Insert(t.tokens, g.span);
    }
    benchmark::DoNotOptimize(trie.num_candidates());
  }
}
BENCHMARK(BM_CTrieInsert);

void BM_CTrieLookup(benchmark::State& state) {
  const auto tweets = BenchTweets(512);
  CTrie trie;
  for (const auto& t : tweets) {
    for (const auto& g : t.gold) trie.Insert(t.tokens, g.span);
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& t = tweets[i++ % tweets.size()];
    int node = trie.root();
    for (const auto& tok : t.tokens) {
      node = trie.Step(node, tok.text);
      if (node == CTrie::kNoNode) node = trie.root();
    }
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_CTrieLookup);

void BM_MentionExtraction(benchmark::State& state) {
  const auto tweets = BenchTweets(static_cast<int>(state.range(0)));
  CTrie trie;
  for (const auto& t : tweets) {
    for (const auto& g : t.gold) trie.Insert(t.tokens, g.span);
  }
  MentionExtractor extractor(&trie);
  for (auto _ : state) {
    size_t found = 0;
    for (const auto& t : tweets) found += extractor.Extract(t.tokens).size();
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * tweets.size());
}
BENCHMARK(BM_MentionExtraction)->Arg(128)->Arg(512)->Arg(2048);

void BM_IncrementalPooling(benchmark::State& state) {
  Rng rng(3);
  std::vector<Mat> embeddings;
  for (int i = 0; i < 64; ++i) {
    Mat e(1, static_cast<int>(state.range(0)));
    e.InitGaussian(&rng, 1.f);
    embeddings.push_back(std::move(e));
  }
  for (auto _ : state) {
    CandidateBase base;
    base.GetOrCreate(0, "bench", 2);
    for (const auto& e : embeddings) base.AddMention(0, {}, e);
    benchmark::DoNotOptimize(base.at(0).GlobalEmbedding());
  }
}
BENCHMARK(BM_IncrementalPooling)->Arg(6)->Arg(100)->Arg(300);

void BM_TweetTokenize(benchmark::State& state) {
  const auto tweets = BenchTweets(256);
  TweetTokenizer tokenizer;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(tweets[i++ % tweets.size()].text));
  }
}
BENCHMARK(BM_TweetTokenize);

void BM_SyntacticEmbedding(benchmark::State& state) {
  const auto tweets = BenchTweets(256);
  size_t i = 0;
  for (auto _ : state) {
    const auto& t = tweets[i++ % tweets.size()];
    if (t.gold.empty()) continue;
    benchmark::DoNotOptimize(SyntacticEmbedding(t.tokens, t.gold[0].span));
  }
}
BENCHMARK(BM_SyntacticEmbedding);

// The pre-blocking MatMul (naive i-k-j with the branchy zero-skip), kept as
// the baseline the blocked kernel is measured against.
Mat NaiveMatMul(const Mat& a, const Mat& b) {
  Mat c(a.rows(), b.cols());
  c.Zero();
  const int n = b.cols();
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const float av = a(i, k);
      if (av == 0.f) continue;
      for (int j = 0; j < n; ++j) c(i, j) += av * b(k, j);
    }
  }
  return c;
}

/// Collects every google-benchmark run into a BenchReporter while still
/// printing the familiar console table.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(bench::BenchReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time * 1e9 / run.iterations
              : 0;
      double throughput = 0;
      std::string unit;
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        throughput = it->second;
        unit = "items/sec";
      }
      out_->Add(run.benchmark_name(), static_cast<long>(run.iterations),
                ns_per_op, throughput, unit);
    }
  }

 private:
  bench::BenchReporter* out_;
};

void RunGemmComparison(bench::BenchReporter* reporter, int n, int reps) {
  Rng rng(5);
  Mat a(n, n), b(n, n), blocked(n, n), dispatched(n, n);
  a.InitGaussian(&rng, 1.f);
  b.InitGaussian(&rng, 1.f);
  const double flops = 2.0 * n * n * n;
  const kernels::KernelBackend& scalar = kernels::ScalarKernels();
  const kernels::KernelBackend& active = kernels::Kernels();

  double naive_best = 1e100, blocked_best = 1e100, dispatch_best = 1e100;
  Mat naive;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    naive = NaiveMatMul(a, b);
    naive_best = std::min(
        naive_best,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    start = std::chrono::steady_clock::now();
    scalar.matmul(a.data(), b.data(), blocked.data(), n, n, n);
    blocked_best = std::min(
        blocked_best,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    start = std::chrono::steady_clock::now();
    active.matmul(a.data(), b.data(), dispatched.data(), n, n, n);
    dispatch_best = std::min(
        dispatch_best,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  // Same ascending-k accumulation order per output element => bit-identical.
  if (std::memcmp(naive.data(), blocked.data(),
                  sizeof(float) * n * n) != 0) {
    std::fprintf(stderr, "FAIL: blocked GEMM diverges from naive at %d^3\n", n);
    std::exit(1);
  }
  // The vectorized kernel reassociates the k-reduction (FMA lanes), so check
  // it against the exact result to a float-accumulation tolerance instead.
  float max_abs = 0.f, max_diff = 0.f;
  for (size_t i = 0; i < naive.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(naive.data()[i]));
    max_diff = std::max(max_diff,
                        std::fabs(naive.data()[i] - dispatched.data()[i]));
  }
  if (max_diff > 1e-4f * std::max(1.f, max_abs)) {
    std::fprintf(stderr, "FAIL: %s GEMM diverges from naive at %d^3 (%g)\n",
                 active.name, n, max_diff);
    std::exit(1);
  }
  std::printf(
      "gemm %d^3: naive %.2f GFLOP/s, blocked %.2f GFLOP/s (x%.2f), "
      "dispatch[%s] %.2f GFLOP/s (x%.2f vs blocked)\n",
      n, flops / naive_best / 1e9, flops / blocked_best / 1e9,
      naive_best / blocked_best, active.name, flops / dispatch_best / 1e9,
      blocked_best / dispatch_best);
  reporter->Add("gemm_naive/" + std::to_string(n), reps, naive_best * 1e9,
                flops / naive_best / 1e9, "GFLOP/s");
  reporter->Add("gemm_blocked/" + std::to_string(n), reps, blocked_best * 1e9,
                flops / blocked_best / 1e9, "GFLOP/s");
  reporter->Add("gemm_dispatch/" + std::to_string(n), reps, dispatch_best * 1e9,
                flops / dispatch_best / 1e9, "GFLOP/s");
}

// int8 quantized GEMM vs the dispatched fp32 GEMM at the layer shapes the
// pipeline actually issues (attention projections, FFN up/down, classifier
// hidden), plus one large square as a roofline reference. Weights are
// pre-quantized outside the timed loop (that is what the models do at
// load time); activations are quantized per call (dynamic quantization is
// part of the int8 inference cost and is timed).
void RunQuantComparison(bench::BenchReporter* reporter, int reps) {
  struct Shape {
    const char* tag;
    int m, k, n;
  };
  const Shape shapes[] = {
      {"attn_proj", 32, 64, 64},    // [tokens, d_model] x [d_model, d_model]
      {"ffn_up", 32, 64, 128},      // [tokens, d_model] x [d_model, d_ff]
      {"ffn_down", 32, 128, 64},    // [tokens, d_ff] x [d_ff, d_model]
      {"classifier", 64, 44, 32},   // [candidates, feat] x [feat, hidden]
      {"square", 256, 256, 256},
  };
  const kernels::KernelBackend& fp32 = kernels::Kernels();
  const kernels::KernelBackend& scalar = kernels::ScalarKernels();
  const kernels::QuantizedBackend& q8 = kernels::Int8Kernels();
  Rng rng(11);
  for (const Shape& s : shapes) {
    Mat a(s.m, s.k), b(s.k, s.n), c32(s.m, s.n), c8(s.m, s.n);
    a.InitGaussian(&rng, 1.f);
    b.InitGaussian(&rng, 0.2f);
    // Pre-quantize weights per output channel: wt is b transposed, [n, k].
    std::vector<std::int8_t> wt8(static_cast<size_t>(s.n) * s.k);
    std::vector<float> w_scales(s.n);
    {
      Mat bt(s.n, s.k);
      for (int kk = 0; kk < s.k; ++kk)
        for (int j = 0; j < s.n; ++j) bt(j, kk) = b(kk, j);
      q8.quantize_rows(bt.data(), s.n, s.k, wt8.data(), w_scales.data());
    }
    std::vector<std::int8_t> a8(static_cast<size_t>(s.m) * s.k);
    std::vector<float> a_scales(s.m);
    const double flops = 2.0 * s.m * s.k * s.n;
    double fp32_best = 1e100, scalar_best = 1e100, int8_best = 1e100;
    for (int r = 0; r < reps; ++r) {
      auto start = std::chrono::steady_clock::now();
      fp32.matmul(a.data(), b.data(), c32.data(), s.m, s.k, s.n);
      fp32_best = std::min(
          fp32_best, std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count());
      start = std::chrono::steady_clock::now();
      scalar.matmul(a.data(), b.data(), c32.data(), s.m, s.k, s.n);
      scalar_best = std::min(
          scalar_best, std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count());
      start = std::chrono::steady_clock::now();
      q8.quantize_rows(a.data(), s.m, s.k, a8.data(), a_scales.data());
      q8.qgemm(a8.data(), a_scales.data(), wt8.data(), w_scales.data(),
               nullptr, c8.data(), s.m, s.k, s.n);
      int8_best = std::min(
          int8_best, std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count());
    }
    // Accuracy check: symmetric 8-bit quantization of both operands bounds
    // each output by ~(maxabs_a * maxabs_w_row / 127) per accumulated term.
    float max_abs = 0.f, max_diff = 0.f;
    for (size_t i = 0; i < c32.size(); ++i) {
      max_abs = std::max(max_abs, std::fabs(c32.data()[i]));
      max_diff =
          std::max(max_diff, std::fabs(c32.data()[i] - c8.data()[i]));
    }
    if (max_diff > 0.05f * std::max(1.f, max_abs)) {
      std::fprintf(stderr, "FAIL: int8 GEMM diverges at %s (%g vs %g)\n",
                   s.tag, max_diff, max_abs);
      std::exit(1);
    }
    std::printf(
        "qgemm %s (%dx%dx%d): fp32[%s] %.2f GFLOP/s, fp32[scalar] %.2f "
        "GFLOP/s, int8[%s] %.2f GFLOP/s (x%.2f vs dispatch, x%.2f vs "
        "scalar), max err %.4f\n",
        s.tag, s.m, s.k, s.n, fp32.name, flops / fp32_best / 1e9,
        flops / scalar_best / 1e9, q8.name, flops / int8_best / 1e9,
        fp32_best / int8_best, scalar_best / int8_best, max_diff);
    const std::string dims = std::string(s.tag) + "/" + std::to_string(s.m) +
                             "x" + std::to_string(s.k) + "x" +
                             std::to_string(s.n);
    reporter->Add("qgemm_fp32/" + dims, reps, fp32_best * 1e9,
                  flops / fp32_best / 1e9, "GFLOP/s");
    reporter->Add("qgemm_fp32_scalar/" + dims, reps, scalar_best * 1e9,
                  flops / scalar_best / 1e9, "GFLOP/s");
    reporter->Add("qgemm_int8/" + dims, reps, int8_best * 1e9,
                  flops / int8_best / 1e9, "GFLOP/s");
  }
  reporter->Add(std::string("quant_backend/") + q8.name, 1, 0, 0, "");
}

}  // namespace
}  // namespace emd

int main(int argc, char** argv) {
  // --gemm-only / --quant-only (ours, not google-benchmark's) skip the
  // microbenchmark sweep so CI's backend-comparison smokes stay fast; strip
  // them before Initialize.
  bool gemm_only = false;
  bool quant_only = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gemm-only") == 0) {
      gemm_only = true;
      continue;
    }
    if (std::strcmp(argv[i], "--quant-only") == 0) {
      quant_only = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  emd::bench::BenchReporter reporter;
  emd::CapturingReporter console(&reporter);
  if (!gemm_only && !quant_only) benchmark::RunSpecifiedBenchmarks(&console);
  if (!quant_only) emd::RunGemmComparison(&reporter, 256, 3);
  if (!gemm_only) emd::RunQuantComparison(&reporter, 5);
  // Machine-readable record of the resolved dispatch selection.
  reporter.Add(std::string("kernel_backend/") + emd::kernels::BackendName(), 1,
               0, 0, "");
  if (!reporter.WriteJson("BENCH_micro.json")) return 1;
  std::printf("wrote BENCH_micro.json\n");
  return 0;
}
