// Ablation: pretrained word embeddings for AguilarNet (the paper's system
// consumes Godin et al.'s Twitter-pretrained vectors; §I credits its edge
// partly to "updated Twitter-trained word embeddings"). Pretrains SkipGram
// embeddings on a large unlabeled tweet dump and compares an AguilarNet
// trained from scratch vs one initialized from the pretrained table, on a
// reduced world so the sweep stays affordable.

#include <cstdio>

#include "bench_common.h"
#include "nn/word2vec.h"
#include "stream/tweet_generator.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace emd;
using namespace emd::bench;

int main() {
  EntityCatalogOptions copt;
  copt.entities_per_topic = 400;
  copt.seed = 77;
  EntityCatalog catalog = EntityCatalog::Build(copt);
  Gazetteer gazetteer = Gazetteer::Build(catalog);
  Dataset full_train = BuildTrainingCorpus(catalog, 1500, 11);
  DatasetSuiteOptions sopt;
  sopt.scale = 0.4;
  sopt.seed = 78;
  Dataset test = BuildD2(catalog, sopt);

  PosTagger tagger;
  tagger.Train(full_train);

  // Unlabeled pretraining dump: 12K tweets across all topics (generation is
  // free; pretraining text may mention novel entities, exactly like a real
  // unlabeled Twitter crawl).
  std::printf("ABLATION: pretrained word embeddings for AguilarNet\n\n");
  Timer timer;
  std::vector<std::vector<std::string>> dump;
  Rng rng(79);
  for (int t = 0; t < static_cast<int>(Topic::kNumTopics); ++t) {
    TweetGeneratorOptions gopt;
    gopt.seed = rng.NextU64();
    TweetGenerator gen(&catalog, static_cast<Topic>(t), gopt);
    for (int i = 0; i < 2400; ++i) {
      std::vector<std::string> sent;
      for (const auto& tok : gen.Next().tokens) sent.push_back(ToLowerAscii(tok.text));
      dump.push_back(std::move(sent));
    }
  }
  SkipGram sg;
  sg.Train(dump, 3);
  std::printf("pretrained %d-word vocabulary on %zu unlabeled tweets (%.1fs)\n\n",
              sg.vocab().size(), dump.size(), timer.ElapsedSeconds());

  std::printf("%-12s %-18s | %6s %6s %6s\n", "annotated", "variant", "P", "R",
              "F1");
  for (int annotated : {400, 1500}) {
    Dataset train = full_train;
    train.tweets.resize(annotated);
    for (bool use_pretrained : {false, true}) {
      AguilarNetOptions aopt;
      aopt.seed = 111;  // identical init for a controlled comparison
      AguilarNetSystem net(&tagger, &gazetteer, aopt);
      AguilarTrainOptions topt;
      topt.epochs = 4;
      net.Train(train, topt, use_pretrained ? &sg : nullptr);
      std::vector<std::vector<TokenSpan>> pred;
      for (const auto& tweet : test.tweets) {
        pred.push_back(net.Process(tweet.tokens).mentions);
      }
      PrfScores s = EvaluateMentions(test, pred);
      std::printf("%-12d %-18s | %6.3f %6.3f %6.3f\n", annotated,
                  use_pretrained ? "pretrained init" : "random init",
                  s.precision, s.recall, s.f1);
      std::fflush(stdout);
    }
  }
  std::printf("\nPretraining covers novel entities unseen in the annotated "
              "corpus — the mechanism behind Aguilar et al.'s rare-entity "
              "coverage in the paper's case study.\n");
  return 0;
}
