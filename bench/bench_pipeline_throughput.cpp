// Pipeline throughput benchmark for the parallel batch execution engine:
// measures end-to-end Globalizer tweets/sec at 1/2/4/8 worker threads over a
// synthetic deep local system, plus raw GEMM GFLOP/s of the blocked kernels.
// Emits machine-readable JSON (emd-bench-v1, see bench_common.h) to
// BENCH_pipeline.json so CI can track throughput trends.
//
// The parallel/serial outputs are digest-checked against each other: a
// thread count that changed a single mention span fails the run.
//
// Two observability checks ride along: the run's metrics-registry snapshot
// is written next to the bench JSON (<out>.metrics.json, same emd-bench-v1
// schema), and the serial pipeline is re-timed with the registry disabled —
// instrumentation overhead beyond the budget fails the run.
//
// Flags:
//   --smoke      tiny sizes (few tweets, threads {1,2}) for CI smoke jobs
//   --out PATH   JSON output path (default BENCH_pipeline.json)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/globalizer.h"
#include "core/phrase_embedder.h"
#include "emd/local_emd_system.h"
#include "nn/kernels/kernels.h"
#include "nn/matrix.h"
#include "nn/planner.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "stream/entity_catalog.h"
#include "stream/tweet_generator.h"
#include "util/file_io.h"
#include "util/rng.h"

namespace emd {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// A deterministic "deep" local system with a realistic compute profile:
// hash-seeded token embeddings pushed through a four-projection GEMM chain
// (the per-token GEMM density of real encoder inference: QKV + output + FFN
// projections per layer) and capitalized-run mention detection. Inference
// reads only the frozen weights, so one instance is safely shared across all
// worker lanes.
class SyntheticDeepSystem : public LocalEmdSystem {
 public:
  explicit SyntheticDeepSystem(int dim) : dim_(dim) {
    Rng rng(1234);
    for (Mat& w : weights_) {
      w = Mat(dim_, dim_);
      w.InitGaussian(&rng, 0.05f);
    }
  }

  std::string name() const override { return "SyntheticDeep"; }
  bool is_deep() const override { return true; }
  bool concurrent_safe() const override { return true; }
  int embedding_dim() const override { return dim_; }

  LocalEmdResult Process(const std::vector<Token>& tokens) override {
    LocalEmdResult result;
    const int t_count = static_cast<int>(tokens.size());
    Mat x(t_count, dim_);
    for (int t = 0; t < t_count; ++t) EmbedToken(tokens[t], &x, t);
    for (const Mat& w : weights_) x = MatMul(x, w);
    result.token_embeddings = std::move(x);
    FindMentions(tokens, &result.mentions);
    return result;
  }

  bool batch_capable() const override { return true; }

  /// Token-batched inference: the token rows of every tweet in the slot are
  /// packed into one matrix and pushed through the projection chain as single
  /// kernel calls over arena scratch. Bit-identical per row to Process
  /// (ascending-k GEMM row invariance), so the digest cross-check holds
  /// between the batched and per-tweet paths.
  void ProcessBatched(const std::vector<const std::vector<Token>*>& tweets,
                      ForwardArena* arena,
                      std::vector<LocalEmdResult>* results) override {
    RaggedPack* pack = arena->pack(0);
    pack->Clear();
    for (const auto* toks : tweets) pack->Add(static_cast<int>(toks->size()));
    Mat* x = arena->mat(0);
    x->Resize(pack->total_rows(), dim_);
    int row = 0;
    for (const auto* toks : tweets) {
      for (const Token& tok : *toks) EmbedToken(tok, x, row++);
    }
    // Ping-pong through two arena slots; `x` ends on the final activations.
    Mat* other = arena->mat(1);
    for (const Mat& w : weights_) {
      MatMulInto(*x, w, other);
      std::swap(x, other);
    }
    Mat* h2 = x;
    results->clear();
    results->resize(tweets.size());
    for (size_t i = 0; i < tweets.size(); ++i) {
      LocalEmdResult& r = (*results)[i];
      const int len = pack->len(static_cast<int>(i));
      r.token_embeddings.Resize(len, dim_);
      std::memcpy(r.token_embeddings.data(),
                  h2->data() +
                      static_cast<size_t>(pack->begin(static_cast<int>(i))) *
                          dim_,
                  sizeof(float) * static_cast<size_t>(len) * dim_);
      FindMentions(*tweets[i], &r.mentions);
    }
  }

 private:
  void EmbedToken(const Token& tok, Mat* x, int row) const {
    uint64_t h = 1469598103934665603ULL;
    for (char c : tok.text) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    Rng rng(h);
    for (int j = 0; j < dim_; ++j) (*x)(row, j) = rng.NextFloat(-1.f, 1.f);
  }

  // Capitalized runs become mentions (Fig. 1-style surface heuristic).
  static void FindMentions(const std::vector<Token>& tokens,
                           std::vector<TokenSpan>* mentions) {
    size_t t = 0;
    while (t < tokens.size()) {
      if (!tokens[t].text.empty() && tokens[t].text[0] >= 'A' &&
          tokens[t].text[0] <= 'Z') {
        size_t end = t + 1;
        while (end < tokens.size() && !tokens[end].text.empty() &&
               tokens[end].text[0] >= 'A' && tokens[end].text[0] <= 'Z') {
          ++end;
        }
        mentions->push_back({t, end});
        t = end;
      } else {
        ++t;
      }
    }
  }

  int dim_;
  Mat weights_[4];
};

std::vector<AnnotatedTweet> MakeWorkload(int n) {
  EntityCatalogOptions copt;
  copt.entities_per_topic = 400;
  copt.seed = 99;
  const EntityCatalog catalog = EntityCatalog::Build(copt);
  TweetGeneratorOptions gopt;
  gopt.seed = 7;
  TweetGenerator gen(&catalog, Topic::kHealth, gopt);
  std::vector<AnnotatedTweet> tweets;
  tweets.reserve(n);
  for (int i = 0; i < n; ++i) tweets.push_back(gen.Next());
  return tweets;
}

/// Order-sensitive digest of the final mention spans — any divergence
/// between thread counts changes it.
uint64_t MentionDigest(const GlobalizerOutput& out) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& per_tweet : out.mentions) {
    mix(per_tweet.size() + 0x9E37);
    for (const TokenSpan& s : per_tweet) {
      mix(s.begin);
      mix(s.end + 0x100000);
    }
  }
  return h;
}

struct PipelineRun {
  double seconds = 0;
  double tweets_per_sec = 0;
  uint64_t digest = 0;
  int candidates = 0;
};

PipelineRun RunPipeline(const std::vector<AnnotatedTweet>& tweets, int dim,
                        int threads, size_t batch_size, bool token_batching,
                        int shards = 1,
                        ShardedGlobalState::MatcherKind matcher =
                            ShardedGlobalState::MatcherKind::kAuto) {
  SyntheticDeepSystem system(dim);
  PhraseEmbedder pe(dim, dim / 2);
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.num_threads = threads;
  opt.token_batching = token_batching;
  opt.shard_count = shards;
  opt.matcher = matcher;
  Globalizer g(&system, &pe, nullptr, opt);

  const auto start = Clock::now();
  for (size_t begin = 0; begin < tweets.size(); begin += batch_size) {
    const size_t end = std::min(tweets.size(), begin + batch_size);
    Status s = g.ProcessBatch(
        std::span<const AnnotatedTweet>(tweets.data() + begin, end - begin));
    if (!s.ok()) {
      std::fprintf(stderr, "ProcessBatch failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  GlobalizerOutput out = g.Finalize().value();
  PipelineRun run;
  run.seconds = SecondsSince(start);
  run.tweets_per_sec = tweets.size() / run.seconds;
  run.digest = MentionDigest(out);
  run.candidates = out.num_candidates;
  return run;
}

/// GEMM GFLOP/s at n^3 via the blocked MatMul (best of `reps`).
double GemmGflops(int n, int reps, double* ns_per_op) {
  Rng rng(5);
  Mat a(n, n), b(n, n), c;
  a.InitGaussian(&rng, 1.f);
  b.InitGaussian(&rng, 1.f);
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    MatMulInto(a, b, &c);
    best = std::min(best, SecondsSince(start));
  }
  *ns_per_op = best * 1e9;
  return 2.0 * n * n * n / best / 1e9;
}

}  // namespace
}  // namespace emd

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const int num_tweets = smoke ? 200 : 2000;
  const int dim = smoke ? 32 : 256;
  const size_t batch_size = 64;
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("pipeline throughput: %d tweets, dim=%d, batch=%zu, %u cpus\n",
              num_tweets, dim, batch_size, hw);

  const auto tweets = emd::MakeWorkload(num_tweets);

  emd::bench::BenchReporter reporter;
  reporter.Add("hardware_concurrency", hw, 0);
  // Machine-readable record of the resolved kernel backend for this run —
  // downstream tooling compares fp32 vs EMD_BACKEND=int8 artifacts by it.
  reporter.Add(std::string("kernel_backend/") + emd::kernels::BackendName(), 1,
               0, 0, "");

  // Baseline: per-tweet local stage (token batching off), single thread.
  // Every other configuration is digest-checked against it: neither thread
  // count nor the forward-pass planner may change a single mention span.
  const emd::PipelineRun unbatched =
      emd::RunPipeline(tweets, dim, 1, batch_size, /*token_batching=*/false);
  const uint64_t serial_digest = unbatched.digest;
  std::printf("  batching=off threads=1  %8.1f tweets/sec  (%.3fs, %d candidates)\n",
              unbatched.tweets_per_sec, unbatched.seconds,
              unbatched.candidates);
  reporter.Add("pipeline/batching=off/threads=1", num_tweets,
               unbatched.seconds * 1e9 / num_tweets, unbatched.tweets_per_sec,
               "tweets/sec");

  double serial_tps = 0;
  for (int threads : thread_counts) {
    const emd::PipelineRun run =
        emd::RunPipeline(tweets, dim, threads, batch_size,
                         /*token_batching=*/true);
    if (run.digest != serial_digest) {
      std::fprintf(stderr,
                   "FAIL: batched %d-thread output digest %016llx != "
                   "unbatched serial %016llx\n",
                   threads, static_cast<unsigned long long>(run.digest),
                   static_cast<unsigned long long>(serial_digest));
      return 1;
    }
    if (threads == 1) serial_tps = run.tweets_per_sec;
    std::printf(
        "  batching=on  threads=%d  %8.1f tweets/sec  (%.3fs, %d candidates, "
        "x%.2f vs serial, x%.2f vs unbatched)\n",
        threads, run.tweets_per_sec, run.seconds, run.candidates,
        serial_tps > 0 ? run.tweets_per_sec / serial_tps : 1.0,
        run.tweets_per_sec / unbatched.tweets_per_sec);
    reporter.Add("pipeline/batching=on/threads=" + std::to_string(threads),
                 num_tweets, run.seconds * 1e9 / num_tweets,
                 run.tweets_per_sec, "tweets/sec");
  }
  std::printf("  token batching speedup (1 thread): x%.2f\n",
              serial_tps / unbatched.tweets_per_sec);
  reporter.Add("pipeline/batching_speedup", 1, 0,
               serial_tps / unbatched.tweets_per_sec, "x");

  // Candidate-scan matcher section (DESIGN §12): both matchers over every
  // shard x thread combination of the acceptance matrix must reproduce the
  // serial digest bit-for-bit, and the per-matcher scan-throughput numbers
  // (tokens/sec through the extraction stage, steps/token from the obs
  // counters) land in the JSON trajectory.
  {
    size_t total_tokens = 0;
    for (const auto& t : tweets) total_tokens += t.tokens.size();
    emd::obs::Counter* steps_counter =
        emd::obs::Metrics().GetCounter("emd_extract_steps_total");
    emd::obs::Counter* probes_counter =
        emd::obs::Metrics().GetCounter("emd_extract_root_probes_total");
    const struct {
      emd::ShardedGlobalState::MatcherKind kind;
      const char* name;
    } matchers[] = {
        {emd::ShardedGlobalState::MatcherKind::kLegacy, "legacy"},
        {emd::ShardedGlobalState::MatcherKind::kInterned, "interned"},
    };
    for (const auto& m : matchers) {
      for (int shards : {1, 4, 13}) {
        for (int threads : {1, 4}) {
          const uint64_t steps0 = steps_counter->value();
          const uint64_t probes0 = probes_counter->value();
          const emd::PipelineRun run = emd::RunPipeline(
              tweets, dim, threads, batch_size, /*token_batching=*/true,
              shards, m.kind);
          const double steps_per_token =
              static_cast<double>(steps_counter->value() - steps0) /
              total_tokens;
          const double probes_per_token =
              static_cast<double>(probes_counter->value() - probes0) /
              total_tokens;
          if (run.digest != serial_digest) {
            std::fprintf(stderr,
                         "FAIL: matcher=%s shards=%d threads=%d digest "
                         "%016llx != serial %016llx\n",
                         m.name, shards, threads,
                         static_cast<unsigned long long>(run.digest),
                         static_cast<unsigned long long>(serial_digest));
            return 1;
          }
          std::printf(
              "  matcher=%-8s shards=%-2d threads=%d  %8.1f tweets/sec  "
              "(%.2f steps/tok, %.2f probes/tok)\n",
              m.name, shards, threads, run.tweets_per_sec, steps_per_token,
              probes_per_token);
          const std::string tag = std::string("matcher=") + m.name +
                                  "/shards=" + std::to_string(shards) +
                                  "/threads=" + std::to_string(threads);
          reporter.Add("scan/" + tag, num_tweets,
                       run.seconds * 1e9 / num_tweets, run.tweets_per_sec,
                       "tweets/sec");
          reporter.Add("scan_steps_per_token/" + tag, 1, 0, steps_per_token,
                       "steps/token");
          reporter.Add("scan_root_probes_per_token/" + tag, 1, 0,
                       probes_per_token, "probes/token");
        }
      }
    }
  }

  const int gemm_n = smoke ? 64 : 256;
  double gemm_ns = 0;
  const double gflops = emd::GemmGflops(gemm_n, smoke ? 2 : 5, &gemm_ns);
  std::printf("  gemm %d^3: %.2f GFLOP/s\n", gemm_n, gflops);
  reporter.Add("gemm_blocked/" + std::to_string(gemm_n), 1, gemm_ns, gflops,
               "GFLOP/s");

  // Instrumentation overhead: the registry claims to be near-zero-cost, so
  // hold it to that. Serial pipeline, best of `reps`, recording on vs off in
  // the same binary. The smoke budget is looser — tiny workloads on shared
  // CI cores jitter more than the effect being measured.
  const int reps = smoke ? 3 : 5;
  auto best_serial_seconds = [&](bool enabled) {
    emd::obs::Metrics().set_enabled(enabled);
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
      best = std::min(
          best, emd::RunPipeline(tweets, dim, 1, batch_size, true).seconds);
    }
    return best;
  };
  const double with_obs = best_serial_seconds(true);
  const double without_obs = best_serial_seconds(false);
  emd::obs::Metrics().set_enabled(true);
  const double overhead_pct = (with_obs / without_obs - 1.0) * 100.0;
  // Smoke runs finish in single-digit milliseconds, where scheduler jitter
  // dwarfs the effect under test — the real 2% assertion is the full run.
  const double budget_pct = smoke ? 25.0 : 2.0;
  std::printf("  obs overhead: %+.2f%% (budget %.0f%%)\n", overhead_pct,
              budget_pct);
  reporter.Add("obs/overhead", 1, (with_obs - without_obs) * 1e9, overhead_pct,
               "percent");

  if (!reporter.WriteJson(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());

  // The run's own metrics snapshot, in the same machine-readable schema, so
  // CI archives stage latencies next to the throughput numbers.
  std::string metrics_path = out_path;
  const std::string suffix = ".json";
  if (metrics_path.size() >= suffix.size() &&
      metrics_path.compare(metrics_path.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
    metrics_path.resize(metrics_path.size() - suffix.size());
  }
  metrics_path += ".metrics.json";
  const emd::Status written = emd::WriteFileAtomic(
      metrics_path, emd::obs::ToBenchJson(emd::obs::Metrics().Snapshot()));
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", metrics_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", metrics_path.c_str());

  if (overhead_pct > budget_pct) {
    std::fprintf(stderr, "FAIL: instrumentation overhead %.2f%% > %.0f%%\n",
                 overhead_pct, budget_pct);
    return 1;
  }
  return 0;
}
