// Reproduces Table II: validation performance of the Entity Classifier for
// each local-EMD variant of the framework, together with the entity
// embedding sizes (6+1 / 6+1 / 100+1 / 300+1 — the "+1" is the candidate
// length feature).

#include <cstdio>

#include "bench_common.h"

using namespace emd;
using namespace emd::bench;

int main() {
  FrameworkKit kit;
  std::printf("TABLE II: Validation Performance of Entity Classifier\n");
  std::printf("(paper: 0.936 / 0.936 / 0.908 / 0.941)\n");
  std::printf("%-15s %-18s %10s %14s %8s\n", "Local EMD", "System Type",
              "Emb. Size", "Validation F1", "Epochs");
  const char* type_names[] = {"POS+NP Chunker", "CRF EMD Tagger",
                              "BiLSTM-CNN-CRF", "Transformer-FFNN"};
  for (SystemKind kind : AllSystems()) {
    const auto report = kit.classifier_report(kind);
    std::printf("%-15s %-18s %7d+1 %14.3f %8d\n", SystemKindName(kind),
                type_names[static_cast<int>(kind)],
                kit.candidate_embedding_dim(kind), report.best_validation_f1,
                report.epochs_run);
    std::fflush(stdout);
  }
  return 0;
}
