// Ablation: candidate-embedding design for deep local EMD (§VI). The paper
// compared 768- vs 300-dim candidate embeddings for BERTweet and chose 300.
// This bench sweeps the phrase-embedding dimension and contrasts the trained
// Entity Phrase Embedder against raw mean pooling (identity projection), the
// alternative SBERT argues against.

#include <cstdio>

#include "bench_common.h"
#include "core/classifier_training.h"
#include "stream/sts_generator.h"

using namespace emd;
using namespace emd::bench;

namespace {

// End-to-end F1 on D2 with a given phrase embedder for the BERTweet system.
double RunWith(FrameworkKit& kit, const PhraseEmbedder& pe, const Dataset& d5,
               const Dataset& stream) {
  const SystemKind kind = SystemKind::kBertweet;
  // Classifier must be retrained for this embedding space.
  EntityClassifierOptions copt;
  copt.input_dim = pe.out_dim() + 1;
  EntityClassifier clf(copt);
  auto examples = BuildClassifierExamples(d5, kit.system(kind), &pe);
  clf.Train(examples);
  Globalizer g(kit.system(kind), &pe, &clf, {});
  return EvaluateMentions(stream, g.Run(stream).value().mentions).f1;
}

}  // namespace

int main() {
  FrameworkKit kit;
  const SystemKind kind = SystemKind::kBertweet;
  LocalEmdSystem* system = kit.system(kind);
  Dataset stream = BuildD2(kit.catalog(), kit.suite_options());
  // A smaller D5 slice keeps the sweep affordable; all variants share it.
  Dataset d5 = kit.d5();
  if (d5.tweets.size() > 6000) d5.tweets.resize(6000);

  StsGeneratorOptions sts_opt;
  sts_opt.num_train_pairs = 1500;
  sts_opt.num_val_pairs = 400;
  sts_opt.seed = 97;
  const StsData sts = GenerateStsData(kit.catalog(), sts_opt);

  std::printf("ABLATION: candidate embedding design (BERTweet instantiation, "
              "%s)\n\n", stream.name.c_str());
  std::printf("%-28s %10s %14s %8s\n", "variant", "cand. dim", "STS val MSE",
              "D2 F1");

  // Trained phrase embedders at several output dims (paper: 300 vs 768).
  for (int dim : {32, 100, 300}) {
    PhraseEmbedder pe(system->embedding_dim(), dim, 1000 + dim);
    auto report = pe.Train(system, sts);
    const double f1 = RunWith(kit, pe, d5, stream);
    std::printf("%-28s %10d %14.4f %8.3f\n", "trained phrase embedder", dim,
                report.best_validation_loss, f1);
    std::fflush(stdout);
  }

  // Raw mean pooling: identity projection, no training (the SBERT strawman).
  {
    const int dim = system->embedding_dim();
    PhraseEmbedder identity(dim, dim, 7);
    // Overwrite with the identity map.
    {
      PhraseEmbedder fresh(dim, dim, 7);
      identity = fresh;
    }
    // Evaluate its STS MSE without training.
    const double mse = identity.Evaluate(system, sts.validation);
    const double f1 = RunWith(kit, identity, d5, stream);
    std::printf("%-28s %10d %14.4f %8.3f\n", "untrained mean pooling", dim, mse,
                f1);
  }
  std::printf("\n(The trained dense layer buys STS fit; end-to-end EMD is "
              "robust across candidate dims — the paper likewise saw only "
              "slight differences between 300 and 768.)\n");
  return 0;
}
