// Typing-extension tests: TypeClassifier learning, serialization, and the
// D5-example builder.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/classifier_training.h"
#include "core/type_classifier.h"
#include "mock_local_system.h"
#include "text/tweet_tokenizer.h"
#include "util/rng.h"

namespace emd {
namespace {

// Synthetic separable typing data: type k clusters around axis k.
std::vector<TypeExample> ClusteredExamples(int n, int dim, uint64_t seed) {
  std::vector<TypeExample> out;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const int type = rng.NextInt(0, static_cast<int>(EntityType::kNumTypes) - 1);
    Mat f(1, dim);
    f.InitGaussian(&rng, 0.3f);
    f(0, type % dim) += 2.f;
    out.push_back({std::move(f), static_cast<EntityType>(type)});
  }
  return out;
}

TEST(TypeClassifierTest, LearnsClusteredTypes) {
  TypeClassifierOptions opt;
  opt.input_dim = 8;
  TypeClassifier clf(opt);
  auto examples = ClusteredExamples(600, 8, 3);
  auto report = clf.Train(examples, {.max_epochs = 150});
  EXPECT_GT(report.best_validation_accuracy, 0.9);
  EXPECT_GT(report.num_train, report.num_validation);
}

TEST(TypeClassifierTest, ProbabilitiesSumToOne) {
  TypeClassifierOptions opt;
  opt.input_dim = 8;
  TypeClassifier clf(opt);
  Rng rng(4);
  Mat f(1, 8);
  f.InitGaussian(&rng, 1.f);
  auto probs = clf.Probabilities(f);
  float sum = 0;
  for (float p : probs) sum += p;
  EXPECT_NEAR(sum, 1.f, 1e-4);
}

TEST(TypeClassifierTest, SaveLoadRoundTrip) {
  TypeClassifierOptions opt;
  opt.input_dim = 8;
  TypeClassifier clf(opt);
  auto examples = ClusteredExamples(200, 8, 5);
  clf.Train(examples, {.max_epochs = 50});
  const std::string path =
      (std::filesystem::temp_directory_path() / "emd_type_test.bin").string();
  ASSERT_TRUE(clf.Save(path).ok());
  TypeClassifier loaded(opt);
  ASSERT_TRUE(loaded.Load(path).ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(clf.Classify(examples[i].features),
              loaded.Classify(examples[i].features));
  }
  std::filesystem::remove(path);
}

TEST(TypeExamplesTest, BuilderLabelsFromCatalog) {
  EntityCatalogOptions copt;
  copt.entities_per_topic = 40;
  copt.seed = 61;
  EntityCatalog catalog = EntityCatalog::Build(copt);
  // Find a person entity to script a stream around.
  const Entity* person = nullptr;
  for (const Entity& e : catalog.entities()) {
    if (e.type == EntityType::kPerson && e.name_tokens.size() == 1) {
      person = &e;
      break;
    }
  }
  ASSERT_NE(person, nullptr);

  Dataset d;
  TweetTokenizer tok;
  for (int i = 0; i < 3; ++i) {
    AnnotatedTweet t;
    t.tweet_id = i + 1;
    t.text = person->name_tokens[0] + " spoke again today";
    t.tokens = tok.Tokenize(t.text);
    t.gold.push_back({{0, 1}, person->id});
    d.tweets.push_back(std::move(t));
  }
  MockLocalSystem mock({{.phrase = {ToLowerAscii(person->name_tokens[0])}}});
  auto examples = BuildTypeExamples(d, catalog, &mock, nullptr);
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_EQ(examples[0].type, EntityType::kPerson);
  EXPECT_EQ(examples[0].features.cols(), 7);
}

}  // namespace
}  // namespace emd
