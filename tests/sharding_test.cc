// Sharding tests (docs/SHARDING.md): ShardRouter stability, the gid facade's
// dense discovery-order id space at any shard count, bit-identical pipeline
// output and embedding sums across shard counts (serial and with the parallel
// shard-aware merge), checkpoint v5 round trips including shard-count changes
// between save and restore, the v4 single-trie compatibility path (live keys
// re-route by hash, tombstones re-home to shard 0), version-skew error
// wording, and the MultiStreamService isolation contract: a noisy stream
// evicts only its own candidates and never perturbs a neighbour's output.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/entity_classifier.h"
#include "core/global_state.h"
#include "core/globalizer.h"
#include "core/phrase_embedder.h"
#include "core/shard_router.h"
#include "mock_local_system.h"
#include "stream/datasets.h"
#include "stream/multi_stream.h"
#include "text/tweet_tokenizer.h"
#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace emd {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

AnnotatedTweet MakeTweet(long id, const std::string& text) {
  AnnotatedTweet t;
  t.tweet_id = id;
  t.sentence_id = static_cast<int>(id) * 10;
  t.topic_id = 7;
  t.text = text;
  t.tokens = TweetTokenizer().Tokenize(text);
  return t;
}

uint32_t MentionDigest(const GlobalizerOutput& out) {
  uint32_t crc = 0;
  for (const auto& tweet_mentions : out.mentions) {
    for (const TokenSpan& span : tweet_mentions) {
      uint64_t packed[2] = {span.begin, span.end};
      crc = Crc32(packed, sizeof(packed), crc);
    }
  }
  return crc;
}

/// Enough distinct phrases (including a multi-token one) that several shards
/// are populated at small shard counts.
std::vector<MockLocalSystem::Rule> ShardRules() {
  return {{.phrase = {"coronavirus"}}, {.phrase = {"andy", "beshear"}},
          {.phrase = {"kentucky"}},    {.phrase = {"louisville"}},
          {.phrase = {"vaccine"}},     {.phrase = {"frankfort"}}};
}

Dataset ShardStream(int copies) {
  Dataset d;
  d.name = "sharded";
  long id = 1;
  for (int c = 0; c < copies; ++c) {
    d.tweets.push_back(MakeTweet(id++, "the Coronavirus keeps spreading"));
    d.tweets.push_back(MakeTweet(id++, "Andy Beshear spoke in Kentucky today"));
    d.tweets.push_back(MakeTweet(id++, "cases rising in Louisville again"));
    d.tweets.push_back(MakeTweet(id++, "the Vaccine arrives in Frankfort soon"));
  }
  return d;
}

/// Every observable the sharded facade exposes must be identical between two
/// runs, regardless of their shard counts.
void ExpectSameGlobalState(const ShardedGlobalState& a,
                           const ShardedGlobalState& b) {
  ASSERT_EQ(a.num_candidates(), b.num_candidates());
  EXPECT_EQ(a.num_live_candidates(), b.num_live_candidates());
  for (int gid = 0; gid < a.num_candidates(); ++gid) {
    EXPECT_EQ(a.IsTombstone(gid), b.IsTombstone(gid)) << "gid " << gid;
    EXPECT_EQ(a.CandidateKey(gid), b.CandidateKey(gid)) << "gid " << gid;
    EXPECT_EQ(a.CandidateLength(gid), b.CandidateLength(gid)) << "gid " << gid;
    EXPECT_EQ(a.WasEvicted(gid), b.WasEvicted(gid)) << "gid " << gid;
    EXPECT_EQ(a.EvictedLabel(gid), b.EvictedLabel(gid)) << "gid " << gid;
    ASSERT_EQ(a.Contains(gid), b.Contains(gid)) << "gid " << gid;
    if (!a.Contains(gid)) continue;
    const CandidateRecord& ra = a.at(gid);
    const CandidateRecord& rb = b.at(gid);
    EXPECT_EQ(ra.mentions.size(), rb.mentions.size()) << "gid " << gid;
    EXPECT_EQ(ra.label, rb.label) << "gid " << gid;
    ASSERT_EQ(ra.embedding_count, rb.embedding_count) << "gid " << gid;
    EXPECT_EQ(ra.embedding_weight, rb.embedding_weight) << "gid " << gid;
    ASSERT_EQ(ra.embedding_sum.size(), rb.embedding_sum.size());
    if (ra.embedding_sum.size() > 0) {
      EXPECT_EQ(std::memcmp(ra.embedding_sum.data(), rb.embedding_sum.data(),
                            sizeof(float) * ra.embedding_sum.size()),
                0)
          << "gid " << gid;
    }
  }
}

// ---------------------------------------------------------- ShardRouter --

TEST(ShardRouterTest, RoutingIsStableInRangeAndDegenerateAtOne) {
  const ShardRouter one(1);
  const ShardRouter four(4);
  const std::vector<std::string> keys = {"coronavirus", "andy beshear",
                                         "kentucky",    "louisville",
                                         "vaccine",     "frankfort"};
  for (const std::string& key : keys) {
    EXPECT_EQ(one.ShardOfFolded(key), 0);
    const int s = four.ShardOfFolded(key);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
    // Pure function of the key bytes: a second router with the same count
    // agrees (the checkpoint-portability property).
    EXPECT_EQ(ShardRouter(4).ShardOfFolded(key), s);
  }
  // The hash covers the whole key, not a prefix: extending a phrase may move
  // it, and distinct keys are not all clumped into one shard.
  std::vector<int> counts(4, 0);
  for (const std::string& key : keys) ++counts[four.ShardOfFolded(key)];
  int populated = 0;
  for (int c : counts) populated += c > 0 ? 1 : 0;
  EXPECT_GE(populated, 2);
}

// --------------------------------------------------- ShardedGlobalState --

TEST(ShardedGlobalStateTest, GidsAreDenseInDiscoveryOrderAtAnyShardCount) {
  ShardedGlobalState single(1);
  ShardedGlobalState sharded(3);
  const std::vector<std::vector<std::string>> phrases = {
      {"coronavirus"}, {"andy", "beshear"}, {"kentucky"},
      {"louisville"},  {"vaccine"},         {"frankfort"}};
  for (size_t i = 0; i < phrases.size(); ++i) {
    // Discovery order defines the gid in both layouts.
    EXPECT_EQ(single.Insert(phrases[i]), static_cast<int>(i));
    EXPECT_EQ(sharded.Insert(phrases[i]), static_cast<int>(i));
    // Re-insertion returns the existing gid.
    EXPECT_EQ(sharded.Insert(phrases[i]), static_cast<int>(i));
  }
  ASSERT_EQ(sharded.num_candidates(), 6);
  EXPECT_EQ(sharded.num_live_candidates(), 6);
  for (size_t i = 0; i < phrases.size(); ++i) {
    EXPECT_EQ(sharded.Find(phrases[i]), static_cast<int>(i));
    EXPECT_EQ(sharded.CandidateKey(static_cast<int>(i)),
              single.CandidateKey(static_cast<int>(i)));
    // The gid→(shard, local) index agrees with the router.
    const GidRef ref = sharded.ref(static_cast<int>(i));
    EXPECT_EQ(ref.shard, sharded.router().ShardOfFolded(
                             sharded.CandidateKey(static_cast<int>(i))));
    EXPECT_EQ(sharded.shard_trie(ref.shard).CandidateKey(ref.local),
              sharded.CandidateKey(static_cast<int>(i)));
  }
  // Per-shard live counts partition the candidate set.
  int total = 0;
  for (int s = 0; s < sharded.shard_count(); ++s) {
    total += sharded.ShardLiveCandidates(s);
  }
  EXPECT_EQ(total, sharded.num_live_candidates());

  // The lockstep multi-trie scan equals the single-trie scan.
  const std::vector<Token> tokens =
      TweetTokenizer().Tokenize("Andy Beshear discussed the Coronavirus");
  const std::vector<ExtractedMention> from_single = single.Extract(tokens);
  const std::vector<ExtractedMention> from_sharded = sharded.Extract(tokens);
  ASSERT_EQ(from_single.size(), from_sharded.size());
  for (size_t m = 0; m < from_single.size(); ++m) {
    EXPECT_EQ(from_single[m].span.begin, from_sharded[m].span.begin);
    EXPECT_EQ(from_single[m].span.end, from_sharded[m].span.end);
    EXPECT_EQ(from_single[m].candidate_id, from_sharded[m].candidate_id);
  }
}

// ------------------------------------------------------ Pipeline output --

TEST(ShardedPipelineTest, DeepPipelineOutputBitIdenticalAcrossShardCounts) {
  Dataset d = ShardStream(4);
  PhraseEmbedder pe(8, 8);

  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.batch_size = 4;

  MockLocalSystem mock1(ShardRules(), /*dim=*/8);
  Globalizer single(&mock1, &pe, nullptr, opt);
  GlobalizerOutput out1 = single.Run(d).value();

  for (int shards : {2, 4, 7}) {
    GlobalizerOptions sharded_opt = opt;
    sharded_opt.shard_count = shards;
    MockLocalSystem mock(ShardRules(), /*dim=*/8);
    Globalizer sharded(&mock, &pe, nullptr, sharded_opt);
    GlobalizerOutput out = sharded.Run(d).value();
    EXPECT_EQ(MentionDigest(out1), MentionDigest(out)) << shards << " shards";
    EXPECT_EQ(out1.num_candidates, out.num_candidates) << shards << " shards";
    ExpectSameGlobalState(single.global_state(), sharded.global_state());
  }
}

TEST(ShardedPipelineTest, ClassifiedLabelsIdenticalAcrossShardCounts) {
  Dataset d = ShardStream(3);
  EntityClassifier clf({.input_dim = 7});

  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kFull;
  opt.batch_size = 4;

  MockLocalSystem mock1(ShardRules());
  Globalizer single(&mock1, nullptr, &clf, opt);
  GlobalizerOutput out1 = single.Run(d).value();

  GlobalizerOptions sharded_opt = opt;
  sharded_opt.shard_count = 4;
  MockLocalSystem mock4(ShardRules());
  Globalizer sharded(&mock4, nullptr, &clf, sharded_opt);
  GlobalizerOutput out4 = sharded.Run(d).value();

  EXPECT_EQ(MentionDigest(out1), MentionDigest(out4));
  EXPECT_EQ(out1.num_entity, out4.num_entity);
  EXPECT_EQ(out1.num_non_entity, out4.num_non_entity);
  EXPECT_EQ(out1.num_ambiguous, out4.num_ambiguous);
  ExpectSameGlobalState(single.global_state(), sharded.global_state());
}

TEST(ShardedPipelineTest, ParallelShardAwareMergeMatchesSerialSingleShard) {
  Dataset d = ShardStream(8);
  PhraseEmbedder pe(8, 8);

  GlobalizerOptions serial;
  serial.mode = GlobalizerOptions::Mode::kMentionExtraction;
  serial.batch_size = 8;
  MockLocalSystem mock1(ShardRules(), /*dim=*/8);
  Globalizer reference(&mock1, &pe, nullptr, serial);
  GlobalizerOutput ref_out = reference.Run(d).value();

  // 4 shards × 4 worker threads: the merge pools different shards on
  // different workers, yet the result is bit-identical to the serial
  // single-shard run.
  GlobalizerOptions parallel = serial;
  parallel.shard_count = 4;
  parallel.num_threads = 4;
  MockLocalSystem mock4(ShardRules(), /*dim=*/8);
  Globalizer sharded(&mock4, &pe, nullptr, parallel);
  GlobalizerOutput out = sharded.Run(d).value();

  EXPECT_EQ(MentionDigest(ref_out), MentionDigest(out));
  ExpectSameGlobalState(reference.global_state(), sharded.global_state());
}

// -------------------------------------------------------- Checkpoint v5 --

TEST(ShardCheckpointTest, V5RoundTripsAcrossShardCountChanges) {
  Dataset d = ShardStream(4);
  const std::string path = TempPath("emd_shard_ckpt_v5.bin");

  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.batch_size = 4;
  opt.shard_count = 4;
  MockLocalSystem mock(ShardRules());
  Globalizer g(&mock, nullptr, nullptr, opt);
  ASSERT_TRUE(g.Run(d).ok());
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());
  const uint32_t want_digest = MentionDigest(g.Finalize().value());

  // A v5 file written with 4 shards restores into any shard count: routing
  // is a pure function of the key, so the rebuilt partitioning — and the
  // pipeline output — match bit for bit.
  for (int shards : {4, 2, 1}) {
    GlobalizerOptions ropt = opt;
    ropt.shard_count = shards;
    MockLocalSystem rmock(ShardRules());
    Globalizer restored(&rmock, nullptr, nullptr, ropt);
    ASSERT_TRUE(restored.RestoreCheckpoint(path).ok()) << shards << " shards";
    EXPECT_EQ(restored.processed_tweets(), g.processed_tweets());
    ExpectSameGlobalState(g.global_state(), restored.global_state());
    for (int gid = 0; gid < restored.global_state().num_candidates(); ++gid) {
      EXPECT_EQ(restored.global_state().ShardOf(gid),
                restored.global_state().router().ShardOfFolded(
                    restored.global_state().CandidateKey(gid)));
    }
    EXPECT_EQ(MentionDigest(restored.Finalize().value()), want_digest);
  }
}

TEST(ShardCheckpointTest, EvictionHolesSurviveShardedRoundTrip) {
  Dataset d = ShardStream(8);
  const std::string path = TempPath("emd_shard_ckpt_evicted.bin");

  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.batch_size = 4;
  opt.shard_count = 4;
  opt.memory.budget_bytes = 4096;  // tiny: evict during the stream
  opt.memory.min_retain_tweets = 0;
  MockLocalSystem mock(ShardRules());
  Globalizer g(&mock, nullptr, nullptr, opt);
  ASSERT_TRUE(g.Run(d).ok());
  ASSERT_GT(g.memory_governor().stats().evicted_candidates, 0u);
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());

  // The gid space — including tombstoned holes spread across shards — and
  // the evicted-label side tables survive a restore into a different count.
  for (int shards : {4, 1}) {
    GlobalizerOptions ropt = opt;
    ropt.shard_count = shards;
    MockLocalSystem rmock(ShardRules());
    Globalizer restored(&rmock, nullptr, nullptr, ropt);
    ASSERT_TRUE(restored.RestoreCheckpoint(path).ok()) << shards << " shards";
    ExpectSameGlobalState(g.global_state(), restored.global_state());
    EXPECT_EQ(restored.memory_governor().stats().evicted_candidates,
              g.memory_governor().stats().evicted_candidates);
    EXPECT_EQ(MentionDigest(restored.Finalize().value()),
              MentionDigest(g.Finalize().value()));
  }
}

/// Hand-crafted single-trie (version 4) checkpoint: one processed tweet, one
/// live candidate "coronavirus" (gid 0), and one eviction hole (gid 1) whose
/// final label was kNonEntity. The v5 reader must rebuild the gid space under
/// the configured shard layout.
std::string BuildV4Checkpoint() {
  std::string buf;
  binio::AppendU32(&buf, 0x454D4447);  // 'EMDG'
  binio::AppendU32(&buf, 4);           // version
  binio::AppendU8(&buf, 1);            // mode = kMentionExtraction
  binio::AppendU64(&buf, 1);           // processed_tweets
  binio::AppendU32(&buf, 0);           // num_quarantined
  binio::AppendU32(&buf, 0);           // num_degraded
  binio::AppendU8(&buf, 0);            // classifier_degraded
  binio::AppendU32(&buf, 0);           // num_retries
  binio::AppendU32(&buf, 0);           // num_fallback
  binio::AppendU32(&buf, 0);           // num_dead_lettered
  binio::AppendU32(&buf, 0);           // breaker_trips
  binio::AppendU32(&buf, 0);           // breaker_recoveries
  // v4 governor lifetime totals: the one eviction that left the gid-1 hole.
  binio::AppendU64(&buf, 1);           // evicted_candidates
  binio::AppendU64(&buf, 0);           // pruned_nodes
  binio::AppendU64(&buf, 0);           // trimmed_tweets
  binio::AppendU64(&buf, 0);           // reclassified

  // v4 single-trie candidate keys: per-id live byte, keys only when live.
  binio::AppendU32(&buf, 2);
  binio::AppendU8(&buf, 1);  // id 0 live
  binio::AppendString(&buf, "coronavirus");
  binio::AppendU32(&buf, 1);  // token length
  binio::AppendU8(&buf, 0);   // id 1 tombstoned

  // TweetBase: one record with the trimmed byte v4 added.
  binio::AppendU64(&buf, 1);
  binio::AppendI64(&buf, 42);  // tweet_id
  binio::AppendI32(&buf, 7);   // sentence_id
  binio::AppendU8(&buf, 0);    // quarantined
  binio::AppendU8(&buf, 0);    // trimmed
  binio::AppendU32(&buf, 2);   // tokens
  binio::AppendString(&buf, "the");
  binio::AppendU64(&buf, 0);
  binio::AppendU64(&buf, 3);
  binio::AppendU8(&buf, 0);  // kWord
  binio::AppendString(&buf, "Coronavirus");
  binio::AppendU64(&buf, 4);
  binio::AppendU64(&buf, 15);
  binio::AppendU8(&buf, 0);
  binio::AppendU32(&buf, 1);  // mentions
  binio::AppendU64(&buf, 1);  // span.begin
  binio::AppendU64(&buf, 2);  // span.end
  binio::AppendI32(&buf, 0);  // candidate_id
  binio::AppendU8(&buf, 1);   // locally_detected

  // CandidateBase: present slot for gid 0, evicted-label byte for gid 1.
  binio::AppendU64(&buf, 2);
  binio::AppendU8(&buf, 1);  // gid 0 present
  binio::AppendString(&buf, "coronavirus");
  binio::AppendI32(&buf, 1);  // num_tokens
  binio::AppendU32(&buf, 1);  // mentions
  binio::AppendU64(&buf, 0);  // tweet_index
  binio::AppendU64(&buf, 1);
  binio::AppendU64(&buf, 2);
  binio::AppendU8(&buf, 1);
  binio::AppendI32(&buf, 1);  // embedding_sum rows
  binio::AppendI32(&buf, 3);  // cols
  binio::AppendF32(&buf, 1.f);
  binio::AppendF32(&buf, 2.f);
  binio::AppendF32(&buf, 3.f);
  binio::AppendI32(&buf, 1);    // embedding_count
  binio::AppendF64(&buf, 1.0);  // embedding_weight (v4)
  binio::AppendU64(&buf, 0);    // last_update_pos (v4)
  binio::AppendU64(&buf, 0);    // last_mention_pos (v4)
  binio::AppendU8(&buf, 0);     // label = kUnlabeled
  binio::AppendF32(&buf, -1.f); // entity_probability
  binio::AppendU32(&buf, 0);    // mention_embeddings
  binio::AppendU8(&buf, 0);     // gid 1 absent
  binio::AppendU8(&buf, static_cast<uint8_t>(CandidateLabel::kNonEntity) +
                            1);  // evicted label

  // v3+ metrics block: empty.
  binio::AppendU32(&buf, 0);
  binio::AppendU32(&buf, 0);

  binio::AppendU32(&buf, Crc32(buf.data(), buf.size()));
  return buf;
}

TEST(ShardCheckpointTest, V4CheckpointRestoresIntoShardedBuild) {
  const std::string path = TempPath("emd_shard_ckpt_v4.bin");
  ASSERT_TRUE(WriteStringToFile(path, BuildV4Checkpoint()).ok());

  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;

  // Default build: everything lands in shard 0, exactly the layout the file
  // was written with.
  MockLocalSystem mock1(ShardRules());
  Globalizer single(&mock1, nullptr, nullptr, opt);
  ASSERT_TRUE(single.RestoreCheckpoint(path).ok());
  EXPECT_EQ(single.global_state().ShardOf(0), 0);
  EXPECT_EQ(single.global_state().ShardOf(1), 0);

  // Sharded build: the live key re-routes by hash; the tombstone re-homes to
  // shard 0 (where the unsharded layout kept it). Gids are unchanged.
  GlobalizerOptions sharded_opt = opt;
  sharded_opt.shard_count = 4;
  MockLocalSystem mock4(ShardRules());
  Globalizer sharded(&mock4, nullptr, nullptr, sharded_opt);
  ASSERT_TRUE(sharded.RestoreCheckpoint(path).ok());

  for (Globalizer* g : {&single, &sharded}) {
    EXPECT_EQ(g->processed_tweets(), 1u);
    ASSERT_EQ(g->global_state().num_candidates(), 2);
    EXPECT_FALSE(g->global_state().IsTombstone(0));
    EXPECT_TRUE(g->global_state().IsTombstone(1));
    ASSERT_TRUE(g->global_state().Contains(0));
    EXPECT_EQ(g->global_state().CandidateKey(0), "coronavirus");
    // Pre-governance fields restored verbatim from the v4 file.
    EXPECT_EQ(g->global_state().at(0).embedding_weight, 1.0);
    EXPECT_TRUE(g->global_state().WasEvicted(1));
    EXPECT_EQ(g->global_state().EvictedLabel(1), CandidateLabel::kNonEntity);
    EXPECT_EQ(g->memory_governor().stats().evicted_candidates, 1u);
  }
  EXPECT_EQ(sharded.global_state().ShardOf(0),
            sharded.global_state().router().ShardOfFolded("coronavirus"));
  EXPECT_EQ(sharded.global_state().ShardOf(1), 0);
  ExpectSameGlobalState(single.global_state(), sharded.global_state());
  EXPECT_EQ(MentionDigest(single.Finalize().value()),
            MentionDigest(sharded.Finalize().value()));

  // Re-saving from the sharded build writes a v5 file that restores into a
  // single-shard build with the same output: no one-way upgrade.
  const std::string v5_path = TempPath("emd_shard_ckpt_v4_resaved.bin");
  ASSERT_TRUE(sharded.SaveCheckpoint(v5_path).ok());
  MockLocalSystem mock_back(ShardRules());
  Globalizer back(&mock_back, nullptr, nullptr, opt);
  ASSERT_TRUE(back.RestoreCheckpoint(v5_path).ok());
  ExpectSameGlobalState(sharded.global_state(), back.global_state());
  EXPECT_EQ(MentionDigest(back.Finalize().value()),
            MentionDigest(sharded.Finalize().value()));
}

TEST(ShardCheckpointTest, VersionSkewErrorNamesFoundAndSupportedVersions) {
  const std::string path = TempPath("emd_shard_ckpt_v6.bin");
  std::string buf;
  binio::AppendU32(&buf, 0x454D4447);
  binio::AppendU32(&buf, 6);  // the first future version
  binio::AppendU32(&buf, Crc32(buf.data(), buf.size()));
  ASSERT_TRUE(WriteStringToFile(path, buf).ok());

  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.shard_count = 4;
  MockLocalSystem mock(ShardRules());
  Globalizer g(&mock, nullptr, nullptr, opt);
  const Status st = g.RestoreCheckpoint(path);
  ASSERT_FALSE(st.ok());
  const std::string message = st.ToString();
  EXPECT_NE(message.find("unsupported format version 6"), std::string::npos)
      << message;
  EXPECT_NE(message.find("versions 1 through 5"), std::string::npos) << message;
  EXPECT_NE(message.find("newer build"), std::string::npos) << message;
}

// ---------------------------------------------------- MultiStreamService --

TEST(MultiStreamServiceTest, ResolvesNamesAndRejectsDuplicates) {
  MultiStreamOptions mopt;
  mopt.globalizer.mode = GlobalizerOptions::Mode::kMentionExtraction;
  MultiStreamService service(mopt);
  MockLocalSystem health(ShardRules());
  MockLocalSystem politics(ShardRules());

  const int health_id =
      service.RegisterStream("health", &health, nullptr, nullptr).value();
  const int politics_id =
      service.RegisterStream("politics", &politics, nullptr, nullptr).value();
  EXPECT_EQ(health_id, 0);
  EXPECT_EQ(politics_id, 1);
  EXPECT_EQ(service.num_streams(), 2);
  EXPECT_EQ(service.stream_name(1), "politics");

  EXPECT_EQ(service.ResolveStream("health"), 0);
  EXPECT_EQ(service.ResolveStream("politics"), 1);
  // Unknown and empty names route to the default stream — the serving edge
  // keeps accepting tweets from clients configured before registration.
  EXPECT_EQ(service.ResolveStream("sports"), 0);
  EXPECT_EQ(service.ResolveStream(""), 0);

  MockLocalSystem dup(ShardRules());
  EXPECT_FALSE(service.RegisterStream("health", &dup, nullptr, nullptr).ok());
  EXPECT_FALSE(service.RegisterStream("", &dup, nullptr, nullptr).ok());
}

TEST(MultiStreamServiceTest, MixedBatchOutputMatchesStandalonePipelines) {
  MultiStreamOptions mopt;
  mopt.globalizer.mode = GlobalizerOptions::Mode::kMentionExtraction;
  mopt.globalizer.shard_count = 2;
  MultiStreamService service(mopt);
  MockLocalSystem sys_a(ShardRules());
  MockLocalSystem sys_b(ShardRules());
  ASSERT_TRUE(service.RegisterStream("a", &sys_a, nullptr, nullptr).ok());
  ASSERT_TRUE(service.RegisterStream("b", &sys_b, nullptr, nullptr).ok());

  Dataset a = ShardStream(2);
  Dataset b = ShardStream(2);
  // Stream b sees the same texts under different tweet ids — distinct
  // per-stream TweetBases must never collide.
  for (AnnotatedTweet& t : b.tweets) {
    t.tweet_id += 1000;
    t.stream_id = 1;
  }

  // Interleave the two streams into mixed batches; ProcessBatch groups by
  // stream_id, so each call runs one cycle per stream with its own tweets.
  for (size_t i = 0; i < a.tweets.size(); i += 4) {
    std::vector<AnnotatedTweet> mixed;
    for (size_t k = i; k < i + 4; ++k) {
      mixed.push_back(b.tweets[k]);  // out of stream order on purpose
      mixed.push_back(a.tweets[k]);
    }
    ASSERT_TRUE(
        service.ProcessBatch(std::span<const AnnotatedTweet>(mixed)).ok());
  }

  // Standalone reference pipelines fed the same per-stream groups.
  MockLocalSystem ref_sys_a(ShardRules());
  MockLocalSystem ref_sys_b(ShardRules());
  Globalizer ref_a(&ref_sys_a, nullptr, nullptr, mopt.globalizer);
  Globalizer ref_b(&ref_sys_b, nullptr, nullptr, mopt.globalizer);
  for (size_t i = 0; i < a.tweets.size(); i += 4) {
    ASSERT_TRUE(
        ref_a.ProcessBatch(std::span<const AnnotatedTweet>(a.tweets.data() + i, 4))
            .ok());
    ASSERT_TRUE(
        ref_b.ProcessBatch(std::span<const AnnotatedTweet>(b.tweets.data() + i, 4))
            .ok());
  }

  EXPECT_EQ(MentionDigest(service.stream(0).Finalize().value()),
            MentionDigest(ref_a.Finalize().value()));
  EXPECT_EQ(MentionDigest(service.stream(1).Finalize().value()),
            MentionDigest(ref_b.Finalize().value()));
  ExpectSameGlobalState(service.stream(0).global_state(),
                        ref_a.global_state());
  ExpectSameGlobalState(service.stream(1).global_state(),
                        ref_b.global_state());

  // Whole-service aggregates: per-shard-index sums over both streams.
  const ServiceSnapshot snap = service.Snapshot();
  ASSERT_EQ(snap.streams.size(), 2u);
  EXPECT_EQ(snap.total_tweets,
            snap.streams[0].tweets + snap.streams[1].tweets);
  ASSERT_EQ(snap.shard_candidates.size(), 2u);
  int64_t live = 0;
  for (int64_t c : snap.shard_candidates) live += c;
  EXPECT_EQ(live, ref_a.global_state().num_live_candidates() +
                      ref_b.global_state().num_live_candidates());

  // The cross-stream query path sees the phrase once per stream.
  const auto hits = service.QueryCandidate({"coronavirus"});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].stream_id, 0);
  EXPECT_EQ(hits[1].stream_id, 1);
  EXPECT_GT(hits[0].num_mentions, 0u);
}

TEST(MultiStreamServiceTest, NoisyStreamEvictsOnlyItsOwnCandidates) {
  // Victim: generous budget. Noisy neighbour: a budget far below its working
  // set, so the governor evicts aggressively.
  MultiStreamOptions mopt;
  mopt.globalizer.mode = GlobalizerOptions::Mode::kMentionExtraction;
  mopt.globalizer.batch_size = 4;
  mopt.globalizer.shard_count = 2;
  GlobalizerOptions noisy_opt = mopt.globalizer;
  noisy_opt.memory.budget_bytes = 4096;
  noisy_opt.memory.min_retain_tweets = 0;

  MultiStreamService service(mopt);
  MockLocalSystem victim_sys(ShardRules());
  MockLocalSystem noisy_sys(ShardRules());
  ASSERT_TRUE(service.RegisterStream("victim", &victim_sys, nullptr, nullptr).ok());
  ASSERT_TRUE(
      service.RegisterStream("noisy", &noisy_sys, nullptr, nullptr, noisy_opt)
          .ok());

  Dataset victim_tweets = ShardStream(4);
  Dataset noisy_tweets = ShardStream(8);
  for (AnnotatedTweet& t : noisy_tweets.tweets) {
    t.tweet_id += 5000;
    t.stream_id = 1;
  }

  // One victim tweet per mixed batch, alongside a slab of noisy traffic —
  // the victim's per-cycle grouping is the same as in the solo run below.
  size_t noisy_pos = 0;
  for (size_t i = 0; i < victim_tweets.tweets.size(); ++i) {
    std::vector<AnnotatedTweet> mixed;
    mixed.push_back(victim_tweets.tweets[i]);
    for (int k = 0; k < 2 && noisy_pos < noisy_tweets.tweets.size(); ++k) {
      mixed.push_back(noisy_tweets.tweets[noisy_pos++]);
    }
    ASSERT_TRUE(
        service.ProcessBatch(std::span<const AnnotatedTweet>(mixed)).ok());
  }

  // Solo victim reference: the identical tweet sequence with no neighbour.
  MockLocalSystem solo_sys(ShardRules());
  Globalizer solo(&solo_sys, nullptr, nullptr, mopt.globalizer);
  for (size_t i = 0; i < victim_tweets.tweets.size(); ++i) {
    ASSERT_TRUE(solo.ProcessBatch(std::span<const AnnotatedTweet>(
                                      &victim_tweets.tweets[i], 1))
                    .ok());
  }

  const ServiceSnapshot snap = service.Snapshot();
  ASSERT_EQ(snap.streams.size(), 2u);
  // The noisy stream blew its budget and paid for it alone.
  EXPECT_GT(snap.streams[1].evicted, 0u);
  EXPECT_EQ(snap.streams[0].evicted, 0u);
  EXPECT_EQ(service.stream(0).memory_governor().stats().evicted_candidates, 0u);
  // The victim's output is bit-identical to running without the neighbour.
  EXPECT_EQ(MentionDigest(service.stream(0).Finalize().value()),
            MentionDigest(solo.Finalize().value()));
  ExpectSameGlobalState(service.stream(0).global_state(), solo.global_state());
}

TEST(MultiStreamServiceTest, CheckpointsRoundTripPerStream) {
  const std::string dir = TempPath("emd_multistream_ckpts");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(CreateDirs(dir).ok());

  MultiStreamOptions mopt;
  mopt.globalizer.mode = GlobalizerOptions::Mode::kMentionExtraction;
  mopt.globalizer.shard_count = 2;
  MultiStreamService service(mopt);
  MockLocalSystem sys_a(ShardRules());
  MockLocalSystem sys_b(ShardRules());
  ASSERT_TRUE(service.RegisterStream("a", &sys_a, nullptr, nullptr).ok());
  ASSERT_TRUE(service.RegisterStream("b", &sys_b, nullptr, nullptr).ok());

  Dataset a = ShardStream(2);
  Dataset b = ShardStream(3);
  for (AnnotatedTweet& t : b.tweets) {
    t.tweet_id += 1000;
    t.stream_id = 1;
  }
  std::vector<AnnotatedTweet> mixed(a.tweets);
  mixed.insert(mixed.end(), b.tweets.begin(), b.tweets.end());
  ASSERT_TRUE(
      service.ProcessBatch(std::span<const AnnotatedTweet>(mixed)).ok());
  ASSERT_TRUE(service.SaveCheckpoints(dir).ok());

  // Restore into a fresh service — plus a stream registered after the save,
  // which has no file and simply starts empty.
  MultiStreamService resumed(mopt);
  MockLocalSystem rsys_a(ShardRules());
  MockLocalSystem rsys_b(ShardRules());
  MockLocalSystem rsys_c(ShardRules());
  ASSERT_TRUE(resumed.RegisterStream("a", &rsys_a, nullptr, nullptr).ok());
  ASSERT_TRUE(resumed.RegisterStream("b", &rsys_b, nullptr, nullptr).ok());
  ASSERT_TRUE(resumed.RegisterStream("c", &rsys_c, nullptr, nullptr).ok());
  ASSERT_TRUE(resumed.RestoreCheckpoints(dir).ok());

  EXPECT_EQ(resumed.stream(0).processed_tweets(),
            service.stream(0).processed_tweets());
  EXPECT_EQ(resumed.stream(1).processed_tweets(),
            service.stream(1).processed_tweets());
  EXPECT_EQ(resumed.stream(2).processed_tweets(), 0u);
  ExpectSameGlobalState(service.stream(0).global_state(),
                        resumed.stream(0).global_state());
  ExpectSameGlobalState(service.stream(1).global_state(),
                        resumed.stream(1).global_state());
  EXPECT_EQ(MentionDigest(resumed.stream(1).Finalize().value()),
            MentionDigest(service.stream(1).Finalize().value()));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace emd
