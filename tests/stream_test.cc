#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "stream/batching.h"
#include "stream/datasets.h"
#include "stream/entity_catalog.h"
#include "stream/gazetteer.h"
#include "stream/lexicon.h"
#include "stream/sts_generator.h"
#include "stream/tweet_generator.h"
#include "text/tweet_tokenizer.h"
#include "util/string_util.h"

namespace emd {
namespace {

EntityCatalog SmallCatalog(uint64_t seed = 7) {
  EntityCatalogOptions opt;
  opt.entities_per_topic = 120;
  opt.seed = seed;
  return EntityCatalog::Build(opt);
}

TEST(EntityCatalogTest, SizesAndUniqueness) {
  EntityCatalog catalog = SmallCatalog();
  EXPECT_EQ(catalog.size(), 120u * static_cast<size_t>(Topic::kNumTopics));
  std::set<std::string> names;
  for (const Entity& e : catalog.entities()) {
    EXPECT_FALSE(e.name_tokens.empty());
    EXPECT_TRUE(names.insert(ToLowerAscii(e.CanonicalName())).second)
        << "duplicate name " << e.CanonicalName();
  }
}

TEST(EntityCatalogTest, DeterministicForSeed) {
  EntityCatalog a = SmallCatalog(9);
  EntityCatalog b = SmallCatalog(9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entities()[i].CanonicalName(), b.entities()[i].CanonicalName());
  }
}

TEST(EntityCatalogTest, TopicFiltering) {
  EntityCatalog catalog = SmallCatalog();
  auto ids = catalog.TopicEntityIds(Topic::kSports);
  EXPECT_EQ(ids.size(), 120u);
  for (int id : ids) EXPECT_EQ(catalog.entity(id).topic, Topic::kSports);
}

TEST(EntityCatalogTest, LowercaseCanonicalFlagMatchesName) {
  EntityCatalog catalog = SmallCatalog();
  int lowercase = 0;
  for (const Entity& e : catalog.entities()) {
    if (e.lowercase_canonical) {
      ++lowercase;
      for (const auto& tok : e.name_tokens) EXPECT_TRUE(IsAllLower(tok));
    }
  }
  EXPECT_GT(lowercase, 0);
}

TEST(EntityCatalogTest, AddCustomAssignsId) {
  EntityCatalog catalog = SmallCatalog();
  Entity e;
  e.type = EntityType::kLocation;
  e.name_tokens = {"Italy"};
  const int id = catalog.AddCustom(e);
  EXPECT_EQ(catalog.entity(id).CanonicalName(), "Italy");
}

TEST(TweetGeneratorTest, DeterministicForSeed) {
  EntityCatalog catalog = SmallCatalog();
  TweetGeneratorOptions opt;
  opt.seed = 5;
  TweetGenerator g1(&catalog, Topic::kHealth, opt);
  TweetGenerator g2(&catalog, Topic::kHealth, opt);
  for (int i = 0; i < 20; ++i) {
    AnnotatedTweet a = g1.Next();
    AnnotatedTweet b = g2.Next();
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.gold.size(), b.gold.size());
  }
}

TEST(TweetGeneratorTest, GoldSpansAreValidAndAligned) {
  EntityCatalog catalog = SmallCatalog();
  TweetGeneratorOptions opt;
  opt.seed = 6;
  TweetGenerator gen(&catalog, Topic::kPolitics, opt);
  for (int i = 0; i < 300; ++i) {
    AnnotatedTweet t = gen.Next();
    ASSERT_EQ(t.silver_pos.size(), t.tokens.size());
    for (const GoldSpan& g : t.gold) {
      ASSERT_LT(g.span.begin, g.span.end);
      ASSERT_LE(g.span.end, t.tokens.size());
      const Entity& e = catalog.entity(g.entity_id);
      // The mention is a case/subset variation of the canonical name: every
      // mention token matches some canonical token case-insensitively.
      for (size_t k = g.span.begin; k < g.span.end; ++k) {
        bool found = false;
        for (const auto& name_tok : e.name_tokens) {
          if (EqualsIgnoreCase(name_tok, t.tokens[k].text)) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << t.tokens[k].text << " not in " << e.CanonicalName();
      }
      // Entity tokens carry the proper-noun silver tag.
      for (size_t k = g.span.begin; k < g.span.end; ++k) {
        EXPECT_EQ(t.silver_pos[k], PosTag::kPropNoun);
      }
    }
  }
}

TEST(TweetGeneratorTest, OffsetsMatchText) {
  EntityCatalog catalog = SmallCatalog();
  TweetGeneratorOptions opt;
  opt.seed = 8;
  TweetGenerator gen(&catalog, Topic::kScience, opt);
  for (int i = 0; i < 100; ++i) {
    AnnotatedTweet t = gen.Next();
    for (const Token& tok : t.tokens) {
      ASSERT_LE(tok.end, t.text.size());
      EXPECT_EQ(t.text.substr(tok.begin, tok.end - tok.begin), tok.text);
    }
  }
}

// Property: re-tokenizing the generated text with the TweetTokenizer yields
// the generator's tokens (the corpus is consistent under the shared
// tokenizer).
TEST(TweetGeneratorTest, TokenizerRoundTrip) {
  EntityCatalog catalog = SmallCatalog();
  TweetTokenizer tokenizer;
  TweetGeneratorOptions opt;
  opt.seed = 12;
  TweetGenerator gen(&catalog, Topic::kEntertainment, opt);
  int mismatches = 0;
  for (int i = 0; i < 200; ++i) {
    AnnotatedTweet t = gen.Next();
    auto retok = tokenizer.Tokenize(t.text);
    if (retok.size() != t.tokens.size()) {
      ++mismatches;
      continue;
    }
    for (size_t k = 0; k < retok.size(); ++k) {
      if (retok[k].text != t.tokens[k].text) {
        ++mismatches;
        break;
      }
    }
  }
  // A tiny disagreement rate is tolerated (typos can create odd shapes).
  EXPECT_LE(mismatches, 4);
}

TEST(TweetGeneratorTest, StreamRepeatsEntities) {
  EntityCatalog catalog = SmallCatalog();
  TweetGeneratorOptions opt;
  opt.seed = 13;
  opt.pool_size = 50;
  opt.zipf_exponent = 1.2;
  TweetGenerator gen(&catalog, Topic::kHealth, opt);
  std::map<int, int> counts;
  for (int i = 0; i < 400; ++i) {
    for (const auto& g : gen.Next().gold) ++counts[g.entity_id];
  }
  int max_count = 0;
  for (auto& [id, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 10) << "top entity should repeat in a targeted stream";
}

TEST(TweetGeneratorTest, ExcludeNovelRestrictsPool) {
  EntityCatalog catalog = SmallCatalog();
  TweetGeneratorOptions opt;
  opt.seed = 14;
  opt.exclude_novel = true;
  TweetGenerator gen(&catalog, Topic::kSports, opt);
  for (int id : gen.pool()) {
    EXPECT_TRUE(catalog.entity(id).in_training);
  }
}

TEST(DatasetsTest, SuiteShapes) {
  EntityCatalog catalog = SmallCatalog();
  DatasetSuiteOptions opt;
  opt.scale = 0.02;
  auto suite = BuildEvaluationSuite(catalog, opt);
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].name, "D1");
  EXPECT_EQ(suite[1].name, "D2");
  EXPECT_EQ(suite[4].name, "WNUT17");
  EXPECT_EQ(suite[5].name, "BTC");
  EXPECT_TRUE(suite[0].streaming);
  EXPECT_FALSE(suite[4].streaming);
  EXPECT_EQ(suite[2].num_topics, 3);
  EXPECT_EQ(suite[3].num_topics, 5);
  EXPECT_EQ(suite[0].size(), 20u);  // 1000 * 0.02
  EXPECT_EQ(suite[3].size(), 120u);
  for (const auto& ds : suite) {
    EXPECT_GT(ds.num_entities, 0) << ds.name;
  }
}

TEST(DatasetsTest, TrainingCorpusExcludesNovelEntities) {
  EntityCatalog catalog = SmallCatalog();
  Dataset train = BuildTrainingCorpus(catalog, 100, 3);
  EXPECT_EQ(train.size(), 100u);
  for (const auto& tweet : train.tweets) {
    for (const auto& g : tweet.gold) {
      EXPECT_TRUE(catalog.entity(g.entity_id).in_training);
    }
  }
}

TEST(DatasetsTest, StatsRefreshCountsUniques) {
  EntityCatalog catalog = SmallCatalog();
  DatasetSuiteOptions opt;
  opt.scale = 0.05;
  Dataset d = BuildD1(catalog, opt);
  std::set<int> unique;
  for (const auto& t : d.tweets) {
    for (const auto& g : t.gold) unique.insert(g.entity_id);
  }
  EXPECT_EQ(d.num_entities, static_cast<int>(unique.size()));
}

TEST(BatchingTest, CoversDatasetInOrder) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    AnnotatedTweet t;
    t.tweet_id = i;
    d.tweets.push_back(t);
  }
  StreamBatcher batcher(&d, 4);
  EXPECT_EQ(batcher.num_batches(), 3u);
  std::vector<long> ids;
  while (batcher.HasNext()) {
    for (const auto& t : batcher.Next()) ids.push_back(t.tweet_id);
  }
  ASSERT_EQ(ids.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ids[i], i);
  batcher.Reset();
  EXPECT_TRUE(batcher.HasNext());
}

TEST(GazetteerTest, CoversFlaggedEntitiesOnly) {
  EntityCatalog catalog = SmallCatalog();
  Gazetteer gz = Gazetteer::Build(catalog);
  for (const Entity& e : catalog.entities()) {
    if (e.in_gazetteer) {
      EXPECT_TRUE(gz.ContainsAny(e.CanonicalName()));
      EXPECT_TRUE(gz.ContainsTyped(e.type, ToLowerAscii(e.CanonicalName())));
    }
  }
  EXPECT_FALSE(gz.ContainsAny("definitely not an entity name"));
}

TEST(GazetteerTest, FeatureVectorDims) {
  EntityCatalog catalog = SmallCatalog();
  Gazetteer gz = Gazetteer::Build(catalog);
  const Entity* listed = nullptr;
  for (const Entity& e : catalog.entities()) {
    if (e.in_gazetteer) {
      listed = &e;
      break;
    }
  }
  ASSERT_NE(listed, nullptr);
  auto f = gz.FeatureVector(listed->CanonicalName());
  EXPECT_FLOAT_EQ(f[static_cast<int>(listed->type)], 1.f);
  EXPECT_FLOAT_EQ(f[Gazetteer::kNumLists - 1], 1.f);
}

TEST(StsGeneratorTest, PairCountsAndScoreRange) {
  EntityCatalog catalog = SmallCatalog();
  StsGeneratorOptions opt;
  opt.num_train_pairs = 50;
  opt.num_val_pairs = 20;
  StsData data = GenerateStsData(catalog, opt);
  EXPECT_EQ(data.train.size(), 50u);
  EXPECT_EQ(data.validation.size(), 20u);
  for (const auto& p : data.train) {
    EXPECT_GE(p.score, 0.f);
    EXPECT_LE(p.score, 1.f);
    EXPECT_FALSE(p.a.empty());
    EXPECT_FALSE(p.b.empty());
  }
}

TEST(StsGeneratorTest, HighScorePairsShareTokens) {
  EntityCatalog catalog = SmallCatalog();
  StsGeneratorOptions opt;
  opt.num_train_pairs = 200;
  opt.num_val_pairs = 1;
  StsData data = GenerateStsData(catalog, opt);
  double high_overlap = 0, low_overlap = 0;
  int high_n = 0, low_n = 0;
  for (const auto& p : data.train) {
    std::unordered_set<std::string> a_set;
    for (const auto& t : p.a) a_set.insert(t.text);
    int shared = 0;
    for (const auto& t : p.b) {
      if (a_set.count(t.text)) ++shared;
    }
    const double overlap = static_cast<double>(shared) / p.b.size();
    if (p.score > 0.85) {
      high_overlap += overlap;
      ++high_n;
    } else if (p.score < 0.2) {
      low_overlap += overlap;
      ++low_n;
    }
  }
  ASSERT_GT(high_n, 0);
  ASSERT_GT(low_n, 0);
  EXPECT_GT(high_overlap / high_n, low_overlap / low_n + 0.3);
}

TEST(LexiconTest, PoolsNonEmpty) {
  const Lexicon& lex = Lexicon::Get();
  EXPECT_GT(lex.stopwords().size(), 30u);
  EXPECT_GT(lex.first_names().size(), 100u);
  for (int t = 0; t < static_cast<int>(Topic::kNumTopics); ++t) {
    EXPECT_GE(lex.topic_words(static_cast<Topic>(t)).size(), 10u);
  }
}

}  // namespace
}  // namespace emd
