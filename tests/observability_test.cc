// Observability layer tests: histogram bucket placement and percentile
// interpolation, counter monotonicity under ParallelFor (the registry's
// thread-safety contract, checked under TSan by scripts/check.sh --tsan),
// exporter golden outputs, the registry disable switch, and checkpoint v3
// metrics persistence with v2 backward compatibility.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/globalizer.h"
#include "mock_local_system.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/tweet_tokenizer.h"
#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/file_io.h"
#include "util/thread_pool.h"

namespace emd {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

AnnotatedTweet MakeTweet(long id, const std::string& text) {
  AnnotatedTweet t;
  t.tweet_id = id;
  t.sentence_id = static_cast<int>(id) * 10;
  t.text = text;
  t.tokens = TweetTokenizer().Tokenize(text);
  return t;
}

// ------------------------------------------------------------- Histogram --

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperEdges) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("h", "", {}, {1.0, 2.0, 4.0});
  // Prometheus le semantics: a value equal to a bound lands in that bound's
  // bucket; anything above the last bound lands in the overflow bucket.
  h->Observe(0.5);
  h->Observe(1.0);
  h->Observe(1.5);
  h->Observe(2.0);
  h->Observe(4.0);
  h->Observe(4.1);
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(counts[2], 1u);  // 4.0
  EXPECT_EQ(counts[3], 1u);  // 4.1 -> overflow
  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.1);
}

TEST(HistogramTest, PercentileInterpolatesWithinCrossingBucket) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("h", "", {}, {10.0, 20.0, 30.0});
  // 10 observations in (0,10], 10 in (10,20]: rank interpolation matches the
  // Prometheus histogram_quantile estimate.
  h->Restore({10, 10, 0, 0}, /*sum=*/300, /*count=*/20);
  EXPECT_DOUBLE_EQ(h->Percentile(0.50), 10.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.95), 19.0);  // rank 19 of 20 -> 10 + 10*0.9
  EXPECT_DOUBLE_EQ(h->Percentile(0.25), 5.0);   // rank 5 of 20 -> 10*0.5
}

TEST(HistogramTest, OverflowBucketClampsToLargestFiniteBound) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("h", "", {}, {1.0, 2.0});
  h->Observe(100);
  h->Observe(200);
  EXPECT_DOUBLE_EQ(h->Percentile(0.99), 2.0);
}

TEST(HistogramTest, EmptyHistogramReportsZeroPercentiles) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("h");
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 0.0);
  EXPECT_EQ(h->count(), 0u);
}

TEST(HistogramTest, DefaultLatencyGridIsStrictlyIncreasing) {
  const std::vector<double>& bounds = obs::Histogram::LatencyBoundsSeconds();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// -------------------------------------------------------------- Registry --

TEST(MetricsRegistryTest, GetReturnsSamePointerForSameNameAndLabel) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("c", "help");
  obs::Counter* b = reg.GetCounter("c");
  EXPECT_EQ(a, b);
  // A different label is a different instance of the same family.
  obs::Counter* labelled = reg.GetCounter("c", "", obs::Label{"k", "v"});
  EXPECT_NE(a, labelled);
  EXPECT_EQ(labelled, reg.GetCounter("c", "", obs::Label{"k", "v"}));
}

TEST(MetricsRegistryTest, CountersStayMonotonicUnderParallelFor) {
  obs::MetricsRegistry reg;
  obs::Counter* counter = reg.GetCounter("parallel_increments_total");
  obs::Histogram* hist = reg.GetHistogram("parallel_obs", "", {}, {0.5, 1.5});
  ThreadPool pool(4);
  constexpr size_t kIterations = 20000;
  pool.ParallelFor(kIterations, [&](int /*slot*/, size_t i) {
    counter->Increment();
    hist->Observe(i % 2 == 0 ? 0.25 : 1.0);
  });
  EXPECT_EQ(counter->value(), kIterations);
  EXPECT_EQ(hist->count(), kIterations);
  const std::vector<uint64_t> counts = hist->BucketCounts();
  EXPECT_EQ(counts[0], kIterations / 2);
  EXPECT_EQ(counts[1], kIterations / 2);
  EXPECT_DOUBLE_EQ(hist->sum(), kIterations / 2 * 0.25 + kIterations / 2 * 1.0);
}

TEST(MetricsRegistryTest, DisabledRegistryDropsUpdatesButKeepsPointers) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("c");
  obs::Gauge* g = reg.GetGauge("g");
  obs::Histogram* h = reg.GetHistogram("h");
  c->Increment(5);
  reg.set_enabled(false);
  c->Increment(100);
  g->Set(42);
  h->Observe(1.0);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_FALSE(h->enabled());
  reg.set_enabled(true);
  c->Increment();
  EXPECT_EQ(c->value(), 6u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesWithoutInvalidatingPointers) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("c");
  obs::Histogram* h = reg.GetHistogram("h");
  c->Increment(7);
  h->Observe(1.0);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.GetCounter("c"), c);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

TEST(TraceSpanTest, SpanFeedsTheStageLatencyHistogram) {
  obs::Histogram* h = obs::Metrics().StageLatency("obs_test_stage");
  const uint64_t before = h->count();
  { EMD_TRACE_SPAN("obs_test_stage"); }
  EXPECT_EQ(h->count(), before + 1);
}

// ------------------------------------------------------------- Exporters --

TEST(ExporterTest, PrometheusTextGolden) {
  obs::MetricsRegistry reg;
  reg.GetCounter("requests_total", "Requests served")->Increment(3);
  reg.GetGauge("queue_depth", "Items queued")->Set(7);
  obs::Histogram* h =
      reg.GetHistogram("latency_seconds", "Latency", obs::Label{"stage", "s1"},
                       {0.1, 0.5});
  h->Observe(0.05);
  h->Observe(0.05);
  h->Observe(0.3);
  h->Observe(2.0);
  const std::string expected =
      "# HELP requests_total Requests served\n"
      "# TYPE requests_total counter\n"
      "requests_total 3\n"
      "# HELP queue_depth Items queued\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 7\n"
      "# HELP latency_seconds Latency\n"
      "# TYPE latency_seconds histogram\n"
      "latency_seconds_bucket{stage=\"s1\",le=\"0.1\"} 2\n"
      "latency_seconds_bucket{stage=\"s1\",le=\"0.5\"} 3\n"
      "latency_seconds_bucket{stage=\"s1\",le=\"+Inf\"} 4\n"
      "latency_seconds_sum{stage=\"s1\"} 2.4\n"
      "latency_seconds_count{stage=\"s1\"} 4\n";
  EXPECT_EQ(obs::ToPrometheusText(reg.Snapshot()), expected);
}

TEST(ExporterTest, PrometheusHelpAndTypeEmittedOncePerFamily) {
  obs::MetricsRegistry reg;
  reg.GetCounter("family_total", "Help text", obs::Label{"k", "a"})->Increment();
  reg.GetCounter("family_total", "Help text", obs::Label{"k", "b"})->Increment();
  const std::string text = obs::ToPrometheusText(reg.Snapshot());
  size_t first = text.find("# HELP family_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# HELP family_total", first + 1), std::string::npos);
  EXPECT_NE(text.find("family_total{k=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("family_total{k=\"b\"} 1"), std::string::npos);
}

TEST(ExporterTest, BenchJsonGolden) {
  obs::MetricsRegistry reg;
  reg.GetCounter("requests_total")->Increment(3);
  obs::Histogram* h =
      reg.GetHistogram("latency_seconds", "", obs::Label{"stage", "s1"},
                       {0.1, 0.5});
  h->Observe(0.1);
  h->Observe(0.3);
  const std::string expected =
      "{\n"
      "  \"schema\": \"emd-bench-v1\",\n"
      "  \"results\": [\n"
      "    {\"name\": \"requests_total\", \"iters\": 3, \"ns_per_op\": 0},\n"
      "    {\"name\": \"latency_seconds/stage=s1\", \"iters\": 2, "
      "\"ns_per_op\": 2e+08},\n"
      "    {\"name\": \"latency_seconds/stage=s1/p50\", \"iters\": 2, "
      "\"ns_per_op\": 1e+08},\n"
      "    {\"name\": \"latency_seconds/stage=s1/p95\", \"iters\": 2, "
      "\"ns_per_op\": 4.6e+08},\n"
      "    {\"name\": \"latency_seconds/stage=s1/p99\", \"iters\": 2, "
      "\"ns_per_op\": 4.92e+08}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(obs::ToBenchJson(reg.Snapshot()), expected);
}

// -------------------------------------------------- Checkpoint v3 metrics --

TEST(CheckpointMetricsTest, V3RoundTripsRegistryCounters) {
  const std::string path = TempPath("emd_obs_ckpt_v3.bin");
  obs::Metrics().Reset();

  MockLocalSystem mock({{.phrase = {"coronavirus"}}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  std::vector<AnnotatedTweet> batch = {
      MakeTweet(1, "the Coronavirus keeps spreading"),
      MakeTweet(2, "worried about coronavirus cases"),
  };
  ASSERT_TRUE(g.ProcessBatch(batch).ok());
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());

  obs::Counter* tweets =
      obs::Metrics().GetCounter("emd_tweets_processed_total");
  obs::Counter* batches = obs::Metrics().GetCounter("emd_batches_total");
  const uint64_t saved_tweets = tweets->value();
  const uint64_t saved_batches = batches->value();
  ASSERT_EQ(saved_tweets, 2u);
  ASSERT_EQ(saved_batches, 1u);

  // "New process": the registry loses its in-memory totals, then the restore
  // brings them back from the checkpoint.
  obs::Metrics().Reset();
  ASSERT_EQ(tweets->value(), 0u);

  MockLocalSystem mock2({{.phrase = {"coronavirus"}}});
  Globalizer restored(&mock2, nullptr, nullptr, opt);
  ASSERT_TRUE(restored.RestoreCheckpoint(path).ok());
  EXPECT_EQ(tweets->value(), saved_tweets);
  EXPECT_EQ(batches->value(), saved_batches);
  EXPECT_GE(
      obs::Metrics().GetCounter("checkpoint_restores_total")->value(), 1u);

  // Stage latency histograms survive too (the local_emd span observed once).
  bool found_local = false;
  for (const auto& h : obs::Metrics().Snapshot().histograms) {
    if (h.name == "emd_stage_latency_seconds" && h.label.value == "local_emd") {
      found_local = h.count >= 1;
    }
  }
  EXPECT_TRUE(found_local);
  std::filesystem::remove(path);
}

TEST(CheckpointMetricsTest, V2CheckpointStillLoads) {
  // A hand-built minimal v2 checkpoint: empty stream, zero counters, no
  // metrics block. A v3 reader must accept it and leave the registry alone.
  const std::string path = TempPath("emd_obs_ckpt_v2.bin");
  std::string buf;
  binio::AppendU32(&buf, 0x454D4447);  // 'EMDG'
  binio::AppendU32(&buf, 2);           // version
  binio::AppendU8(&buf, static_cast<uint8_t>(
                            GlobalizerOptions::Mode::kMentionExtraction));
  binio::AppendU64(&buf, 0);  // cursor
  binio::AppendU32(&buf, 0);  // num_quarantined
  binio::AppendU32(&buf, 0);  // num_degraded
  binio::AppendU8(&buf, 0);   // classifier_degraded
  binio::AppendU32(&buf, 0);  // num_retries
  binio::AppendU32(&buf, 0);  // num_fallback
  binio::AppendU32(&buf, 0);  // num_dead_lettered
  binio::AppendU32(&buf, 0);  // breaker_trips
  binio::AppendU32(&buf, 0);  // breaker_recoveries
  binio::AppendU32(&buf, 0);  // CTrie candidates
  binio::AppendU64(&buf, 0);  // TweetBase records
  binio::AppendU64(&buf, 0);  // CandidateBase slots
  binio::AppendU32(&buf, Crc32(buf.data(), buf.size()));
  ASSERT_TRUE(WriteFileAtomic(path, buf).ok());

  obs::Metrics().Reset();
  MockLocalSystem mock({{.phrase = {"coronavirus"}}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  EXPECT_TRUE(g.RestoreCheckpoint(path).ok());
  EXPECT_EQ(g.processed_tweets(), 0u);
  // No metrics block in v2: the pipeline totals stay at their reset values.
  EXPECT_EQ(obs::Metrics().GetCounter("emd_tweets_processed_total")->value(),
            0u);
  std::filesystem::remove(path);
}

TEST(CheckpointMetricsTest, TruncatedMetricsBlockIsRejected) {
  const std::string path = TempPath("emd_obs_ckpt_trunc.bin");
  obs::Metrics().Reset();
  MockLocalSystem mock({{.phrase = {"coronavirus"}}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  std::vector<AnnotatedTweet> batch = {
      MakeTweet(1, "the Coronavirus keeps spreading")};
  ASSERT_TRUE(g.ProcessBatch(batch).ok());
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());

  // Drop 12 bytes from the metrics block (before the CRC) and re-seal the
  // checksum: the structural parse, not just the CRC, must catch it.
  std::string buf = ReadFileToString(path).value();
  ASSERT_GT(buf.size(), 20u);
  buf.resize(buf.size() - sizeof(uint32_t) - 12);
  binio::AppendU32(&buf, Crc32(buf.data(), buf.size()));
  ASSERT_TRUE(WriteFileAtomic(path, buf).ok());

  MockLocalSystem mock2({{.phrase = {"coronavirus"}}});
  Globalizer fresh(&mock2, nullptr, nullptr, opt);
  EXPECT_TRUE(fresh.RestoreCheckpoint(path).IsCorruption());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace emd
