// HIRE-NER baseline tests: training, document-level memory behaviour,
// serialization.

#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/hire_ner.h"
#include "eval/metrics.h"
#include "stream/datasets.h"

namespace emd {
namespace {

struct HireWorld {
  EntityCatalog catalog;
  Dataset train;
  Dataset test;
  HireNer model;

  static HireWorld* Make() {
    EntityCatalogOptions copt;
    copt.entities_per_topic = 120;
    copt.seed = 21;
    auto* w = new HireWorld{EntityCatalog::Build(copt), {}, {}, HireNer({
        .word_dim = 24, .lstm_hidden = 16, .dense_dim = 32})};
    w->train = BuildTrainingCorpus(w->catalog, 400, 31);
    DatasetSuiteOptions sopt;
    sopt.scale = 0.1;
    w->test = BuildD1(w->catalog, sopt);
    w->model.Train(w->train, {.epochs = 3});
    return w;
  }
};

HireWorld& World() {
  static HireWorld* w = HireWorld::Make();
  return *w;
}

TEST(HireNerTest, TrainsAndDetectsSomething) {
  HireWorld& w = World();
  EXPECT_TRUE(w.model.trained());
  auto pred = w.model.ProcessDocument(w.test);
  ASSERT_EQ(pred.size(), w.test.tweets.size());
  PrfScores s = EvaluateMentions(w.test, pred);
  EXPECT_GT(s.f1, 0.2);
}

TEST(HireNerTest, DocumentMemoryIsDeterministic) {
  HireWorld& w = World();
  auto a = w.model.ProcessDocument(w.test);
  auto b = w.model.ProcessDocument(w.test);
  EXPECT_EQ(a, b);
}

TEST(HireNerTest, SaveLoadRoundTrip) {
  HireWorld& w = World();
  const std::string path =
      (std::filesystem::temp_directory_path() / "emd_hire_test.model").string();
  ASSERT_TRUE(w.model.Save(path).ok());
  HireNer loaded({.word_dim = 24, .lstm_hidden = 16, .dense_dim = 32});
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(w.model.ProcessDocument(w.test), loaded.ProcessDocument(w.test));
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".wv");
}

}  // namespace
}  // namespace emd
