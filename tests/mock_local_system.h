// MockLocalSystem: a scripted LocalEmdSystem for deterministic pipeline
// tests. Detects mentions of configured phrases, with optional per-phrase
// detection rules (e.g. "only when capitalized" to emulate the
// inconsistent-detection behaviour the framework corrects).

#ifndef EMD_TESTS_MOCK_LOCAL_SYSTEM_H_
#define EMD_TESTS_MOCK_LOCAL_SYSTEM_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "emd/local_emd_system.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace emd {

class MockLocalSystem : public LocalEmdSystem {
 public:
  struct Rule {
    std::vector<std::string> phrase;  // case-insensitive token match
    /// Detect only when the first token is capitalized in the sentence.
    bool require_capitalized = false;
    /// Truncate the detection to the first token (partial extraction).
    bool partial = false;
  };

  /// `dim` > 0 makes the mock "deep": deterministic pseudo-embeddings are
  /// produced per token (hash-seeded), entity-ish tokens offset by +1.
  explicit MockLocalSystem(std::vector<Rule> rules, int dim = 0)
      : rules_(std::move(rules)), dim_(dim) {}

  std::string name() const override { return "Mock"; }
  const char* process_failpoint() const override {
    return failpoint_name_.c_str();
  }

  /// Overrides the failpoint evaluated by TryProcess (default
  /// "emd.mock.process") so a primary and a fallback mock in the same test
  /// can fail independently.
  void set_process_failpoint(std::string name) {
    failpoint_name_ = std::move(name);
  }
  bool is_deep() const override { return dim_ > 0; }
  int embedding_dim() const override { return dim_; }
  /// Process writes only its local result (calls_ is atomic), so the mock
  /// can be shared across worker lanes in parallel-pipeline tests.
  bool concurrent_safe() const override { return true; }

  /// Opts the mock into the token-batched local stage: the Globalizer routes
  /// whole batch-slot chunks through ProcessBatched instead of per-tweet
  /// Process calls.
  void set_batch_capable(bool on) { batch_capable_ = on; }
  bool batch_capable() const override { return batch_capable_; }

  void ProcessBatched(const std::vector<const std::vector<Token>*>& tweets,
                      ForwardArena* arena,
                      std::vector<LocalEmdResult>* results) override {
    ++batched_calls_;
    // The per-tweet fallback already produces bit-identical results; the
    // override only exists to count batched entry-point invocations.
    LocalEmdSystem::ProcessBatched(tweets, arena, results);
  }

  LocalEmdResult Process(const std::vector<Token>& tokens) override {
    ++calls_;
    LocalEmdResult result;
    for (size_t t = 0; t < tokens.size(); ++t) {
      for (const Rule& rule : rules_) {
        if (t + rule.phrase.size() > tokens.size()) continue;
        bool match = true;
        for (size_t k = 0; k < rule.phrase.size(); ++k) {
          if (!EqualsIgnoreCase(tokens[t + k].text, rule.phrase[k])) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        if (rule.require_capitalized &&
            (tokens[t].text.empty() || !IsUpperAscii(tokens[t].text[0]))) {
          continue;
        }
        const size_t end = rule.partial ? t + 1 : t + rule.phrase.size();
        result.mentions.push_back({t, end});
      }
    }
    if (dim_ > 0) {
      result.token_embeddings = Mat(static_cast<int>(tokens.size()), dim_);
      for (size_t t = 0; t < tokens.size(); ++t) {
        // Deterministic per-word embedding so pooling is reproducible.
        uint64_t h = 1469598103934665603ULL;
        for (char c : ToLowerAscii(tokens[t].text)) {
          h ^= static_cast<unsigned char>(c);
          h *= 1099511628211ULL;
        }
        Rng rng(h);
        for (int j = 0; j < dim_; ++j) {
          result.token_embeddings(static_cast<int>(t), j) =
              rng.NextFloat(-1.f, 1.f);
        }
      }
    }
    return result;
  }

  int calls() const { return calls_; }
  int batched_calls() const { return batched_calls_; }

 private:
  std::vector<Rule> rules_;
  int dim_;
  bool batch_capable_ = false;
  std::atomic<int> calls_{0};
  std::atomic<int> batched_calls_{0};
  std::string failpoint_name_ = "emd.mock.process";
};

}  // namespace emd

#endif  // EMD_TESTS_MOCK_LOCAL_SYSTEM_H_
