// Tests for the four Local EMD instantiations and their shared substrates
// (PosTagger, subword tokenizer), on a small fresh world. Training runs are
// deliberately tiny; the assertions target behaviour, not benchmark scores.

#include <gtest/gtest.h>

#include <filesystem>

#include "emd/aguilar_net.h"
#include "emd/mini_bertweet.h"
#include "emd/np_chunker.h"
#include "emd/pos_tagger.h"
#include "emd/subword.h"
#include "emd/twitter_nlp.h"
#include "text/tweet_tokenizer.h"
#include "eval/metrics.h"
#include "stream/datasets.h"
#include "stream/gazetteer.h"
#include "util/string_util.h"

namespace emd {
namespace {

struct World {
  EntityCatalog catalog;
  Gazetteer gazetteer;
  Dataset train;
  Dataset test;
  PosTagger tagger;

  static World Make() {
    EntityCatalogOptions copt;
    copt.entities_per_topic = 150;
    copt.seed = 5;
    World w{EntityCatalog::Build(copt), {}, {}, {}, {}};
    w.gazetteer = Gazetteer::Build(w.catalog);
    w.train = BuildTrainingCorpus(w.catalog, 600, 11);
    DatasetSuiteOptions sopt;
    sopt.scale = 0.15;
    w.test = BuildD1(w.catalog, sopt);
    w.tagger.Train(w.train, {.epochs = 3});
    return w;
  }
};

World& SharedWorld() {
  static World* w = new World(World::Make());
  return *w;
}

double MentionF1(const Dataset& data, LocalEmdSystem* system) {
  std::vector<std::vector<TokenSpan>> pred;
  for (const auto& tweet : data.tweets) {
    pred.push_back(system->Process(tweet.tokens).mentions);
  }
  return EvaluateMentions(data, pred).f1;
}

TEST(PosTaggerTest, LearnsSilverTags) {
  World& w = SharedWorld();
  EXPECT_GT(w.tagger.Accuracy(w.train), 0.85);
  // Held-out (same distribution): still decent.
  Dataset held = BuildTrainingCorpus(w.catalog, 100, 999);
  EXPECT_GT(w.tagger.Accuracy(held), 0.75);
}

TEST(PosTaggerTest, ForcedKindsAlwaysCorrect) {
  World& w = SharedWorld();
  Token hash{.text = "#covid", .kind = TokenKind::kHashtag};
  Token url{.text = "https://x.co", .kind = TokenKind::kUrl};
  Token punct{.text = "!", .kind = TokenKind::kPunct};
  auto tags = w.tagger.Tag({hash, url, punct});
  EXPECT_EQ(tags[0], PosTag::kHashtag);
  EXPECT_EQ(tags[1], PosTag::kUrl);
  EXPECT_EQ(tags[2], PosTag::kPunct);
}

TEST(PosTaggerTest, SaveLoadPreservesTags) {
  World& w = SharedWorld();
  const std::string path =
      (std::filesystem::temp_directory_path() / "emd_pos_test.model").string();
  ASSERT_TRUE(w.tagger.Save(path).ok());
  PosTagger loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  for (int i = 0; i < 20; ++i) {
    const auto& tokens = w.test.tweets[i].tokens;
    EXPECT_EQ(w.tagger.Tag(tokens), loaded.Tag(tokens));
  }
  std::filesystem::remove(path);
}

TEST(NpChunkerTest, ProjectsCapitalizedNounChunks) {
  World& w = SharedWorld();
  NpChunkerSystem chunker(&w.tagger);
  for (const auto& tweet : w.train.tweets) {
    for (const auto& tok : tweet.tokens) {
      if (tok.kind == TokenKind::kWord) chunker.AddLexiconWord(ToLowerAscii(tok.text));
    }
  }
  EXPECT_FALSE(chunker.is_deep());
  EXPECT_EQ(chunker.embedding_dim(), 0);
  const double f1 = MentionF1(w.test, &chunker);
  // Weak but not useless — the paper's chunker sits at F1 0.33-0.56.
  EXPECT_GT(f1, 0.15);
  EXPECT_LT(f1, 0.75);
}

TEST(TwitterNlpTest, TrainsAndBeatsChunker) {
  World& w = SharedWorld();
  static TwitterNlpSystem* tnlp = [] {
    auto* sys = new TwitterNlpSystem(&SharedWorld().tagger, &SharedWorld().gazetteer);
    sys->Train(SharedWorld().train, {.epochs = 3});
    return sys;
  }();
  EXPECT_TRUE(tnlp->trained());
  const double f1 = MentionF1(w.test, tnlp);
  EXPECT_GT(f1, 0.4);

  // Save/load roundtrip reproduces outputs exactly.
  const std::string path =
      (std::filesystem::temp_directory_path() / "emd_tnlp_test.model").string();
  ASSERT_TRUE(tnlp->Save(path).ok());
  TwitterNlpSystem loaded(&w.tagger, &w.gazetteer);
  ASSERT_TRUE(loaded.Load(path).ok());
  for (int i = 0; i < 30; ++i) {
    const auto& tokens = w.test.tweets[i].tokens;
    EXPECT_EQ(tnlp->Process(tokens).mentions, loaded.Process(tokens).mentions);
  }
  std::filesystem::remove(path);
}

TEST(AguilarNetTest, TrainsEmitsEmbeddingsAndRoundTrips) {
  World& w = SharedWorld();
  static AguilarNetSystem* net = [] {
    AguilarNetOptions opt;
    opt.word_dim = 24;
    opt.lstm_hidden = 16;
    opt.dense_dim = 32;
    auto* sys = new AguilarNetSystem(&SharedWorld().tagger, &SharedWorld().gazetteer,
                                     opt);
    Dataset small = SharedWorld().train;
    small.tweets.resize(300);
    sys->Train(small, {.epochs = 3});
    return sys;
  }();
  EXPECT_TRUE(net->is_deep());
  EXPECT_EQ(net->embedding_dim(), 32);

  LocalEmdResult r = net->Process(w.test.tweets[0].tokens);
  EXPECT_EQ(r.token_embeddings.rows(),
            static_cast<int>(w.test.tweets[0].tokens.size()));
  EXPECT_EQ(r.token_embeddings.cols(), 32);

  const double f1 = MentionF1(w.test, net);
  EXPECT_GT(f1, 0.3);

  const std::string path =
      (std::filesystem::temp_directory_path() / "emd_aguilar_test.model").string();
  ASSERT_TRUE(net->Save(path).ok());
  AguilarNetOptions opt;
  opt.word_dim = 24;
  opt.lstm_hidden = 16;
  opt.dense_dim = 32;
  AguilarNetSystem loaded(&w.tagger, &w.gazetteer, opt);
  ASSERT_TRUE(loaded.Load(path).ok());
  for (int i = 0; i < 15; ++i) {
    const auto& tokens = w.test.tweets[i].tokens;
    EXPECT_EQ(net->Process(tokens).mentions, loaded.Process(tokens).mentions);
  }
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".wv");
  std::filesystem::remove(path + ".cv");
}

TEST(MiniBertweetTest, TrainsEmitsEmbeddingsAndRoundTrips) {
  World& w = SharedWorld();
  static MiniBertweetSystem* net = [] {
    MiniBertweetOptions opt;
    opt.d_model = 32;
    opt.num_heads = 2;
    opt.d_ff = 64;
    opt.num_layers = 1;
    auto* sys = new MiniBertweetSystem(opt);
    Dataset small = SharedWorld().train;
    small.tweets.resize(300);
    sys->Train(small, {.epochs = 3});
    return sys;
  }();
  EXPECT_TRUE(net->is_deep());
  EXPECT_EQ(net->embedding_dim(), 32);
  LocalEmdResult r = net->Process(w.test.tweets[0].tokens);
  EXPECT_EQ(r.token_embeddings.rows(),
            static_cast<int>(w.test.tweets[0].tokens.size()));

  const double f1 = MentionF1(w.test, net);
  EXPECT_GT(f1, 0.2);

  const std::string path =
      (std::filesystem::temp_directory_path() / "emd_bertweet_test.model").string();
  ASSERT_TRUE(net->Save(path).ok());
  MiniBertweetOptions opt;
  opt.d_model = 32;
  opt.num_heads = 2;
  opt.d_ff = 64;
  opt.num_layers = 1;
  MiniBertweetSystem loaded(opt);
  ASSERT_TRUE(loaded.Load(path).ok());
  for (int i = 0; i < 15; ++i) {
    const auto& tokens = w.test.tweets[i].tokens;
    EXPECT_EQ(net->Process(tokens).mentions, loaded.Process(tokens).mentions);
  }
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".sv");
}

TEST(SubwordTest, SplitCoversAnyAsciiWord) {
  World& w = SharedWorld();
  SubwordTokenizer st = SubwordTokenizer::Build(w.train, 3);
  for (const std::string word : {"coronavirus", "xyzzyplugh", "a", "Beshear42"}) {
    auto split = st.Split(word);
    EXPECT_FALSE(split.piece_ids.empty());
    for (int id : split.piece_ids) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, st.vocab_size());
    }
  }
}

TEST(SubwordTest, FrequentWordIsSinglePiece) {
  World& w = SharedWorld();
  SubwordTokenizer st = SubwordTokenizer::Build(w.train, 3);
  EXPECT_EQ(st.Split("the").piece_ids.size(), 1u);
}

TEST(SubwordTest, SerializeRoundTrip) {
  World& w = SharedWorld();
  SubwordTokenizer st = SubwordTokenizer::Build(w.train, 3);
  auto r = SubwordTokenizer::Deserialize(st.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->vocab_size(), st.vocab_size());
  EXPECT_EQ(r->Split("coronavirus").piece_ids, st.Split("coronavirus").piece_ids);
}

TEST(CapClassifierTest, DistinguishesInformativeCasing) {
  World& w = SharedWorld();
  CapClassifier cap;
  cap.Train(w.train);
  TweetTokenizer tok;
  const float informative = cap.Informative(tok.Tokenize("Andy spoke to the press"));
  const float allcaps = cap.Informative(tok.Tokenize("EVERYTHING IS IN CAPS HERE"));
  EXPECT_GT(informative, allcaps);
}

}  // namespace
}  // namespace emd
