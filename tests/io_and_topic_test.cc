// Tests for CoNLL import/export and the topic classifier / stream router.

#include <gtest/gtest.h>

#include "stream/conll_io.h"
#include "stream/datasets.h"
#include "stream/topic_classifier.h"
#include "stream/tweet_generator.h"
#include "text/tweet_tokenizer.h"

namespace emd {
namespace {

EntityCatalog TestCatalog() {
  EntityCatalogOptions opt;
  opt.entities_per_topic = 100;
  opt.seed = 41;
  return EntityCatalog::Build(opt);
}

TEST(ConllIoTest, RoundTripPreservesTokensAndSpans) {
  EntityCatalog catalog = TestCatalog();
  DatasetSuiteOptions sopt;
  sopt.scale = 0.05;
  Dataset original = BuildD1(catalog, sopt);
  auto parsed = DatasetFromConll(DatasetToConll(original));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.tweets[i];
    const auto& b = parsed->tweets[i];
    EXPECT_EQ(a.tweet_id, b.tweet_id);
    ASSERT_EQ(a.tokens.size(), b.tokens.size());
    for (size_t t = 0; t < a.tokens.size(); ++t) {
      EXPECT_EQ(a.tokens[t].text, b.tokens[t].text);
    }
    ASSERT_EQ(a.gold.size(), b.gold.size());
    for (size_t g = 0; g < a.gold.size(); ++g) {
      EXPECT_EQ(a.gold[g].span, b.gold[g].span);
    }
  }
}

TEST(ConllIoTest, ParsesTypedLabels) {
  const std::string text =
      "Andy\tB-person\nBeshear\tI-person\nsays\tO\nhi\tO\n\n";
  auto parsed = DatasetFromConll(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  ASSERT_EQ(parsed->tweets[0].gold.size(), 1u);
  EXPECT_EQ(parsed->tweets[0].gold[0].span, (TokenSpan{0, 2}));
}

TEST(ConllIoTest, SameSurfaceSharesEntityId) {
  const std::string text =
      "Coronavirus\tB\nspreads\tO\n\ncoronavirus\tB\nagain\tO\n\n";
  auto parsed = DatasetFromConll(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->tweets[0].gold[0].entity_id, parsed->tweets[1].gold[0].entity_id);
  EXPECT_EQ(parsed->num_entities, 1);
}

TEST(ConllIoTest, RejectsMalformedLines) {
  EXPECT_FALSE(DatasetFromConll("just_a_token_no_label\n\n").ok());
  EXPECT_FALSE(DatasetFromConll("token\tX\n\n").ok());
}

TEST(ConllIoTest, EmptyInputYieldsEmptyDataset) {
  auto parsed = DatasetFromConll("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 0u);
}

TEST(ConllIoTest, TokenKindsRecovered) {
  const std::string text = "@user\tO\n#covid\tO\nhello\tO\n\n";
  auto parsed = DatasetFromConll(text);
  ASSERT_TRUE(parsed.ok());
  const auto& toks = parsed->tweets[0].tokens;
  EXPECT_EQ(toks[0].kind, TokenKind::kMention);
  EXPECT_EQ(toks[1].kind, TokenKind::kHashtag);
  EXPECT_EQ(toks[2].kind, TokenKind::kWord);
}

TEST(TopicClassifierTest, RoutesTopicalStreams) {
  EntityCatalog catalog = TestCatalog();
  Dataset train = BuildTrainingCorpus(catalog, 800, 51);
  TopicClassifier clf;
  clf.Train(train);
  EXPECT_TRUE(clf.trained());
  EXPECT_GT(clf.Accuracy(train), 0.6);

  // Held-out mixed stream.
  DatasetSuiteOptions sopt;
  sopt.scale = 0.05;
  Dataset mixed = BuildD4(catalog, sopt);  // 5 topics
  EXPECT_GT(clf.Accuracy(mixed), 0.5);

  auto streams = clf.Route(mixed);
  ASSERT_EQ(streams.size(), static_cast<size_t>(Topic::kNumTopics));
  size_t total = 0;
  for (const auto& s : streams) total += s.size();
  EXPECT_EQ(total, mixed.size());
}

TEST(TopicClassifierTest, TopicWordsDriveClassification) {
  EntityCatalog catalog = TestCatalog();
  Dataset train = BuildTrainingCorpus(catalog, 800, 52);
  TopicClassifier clf;
  clf.Train(train);
  TweetTokenizer tok;
  EXPECT_EQ(clf.Classify(tok.Tokenize("the vaccine and quarantine symptoms")),
            Topic::kHealth);
  EXPECT_EQ(clf.Classify(tok.Tokenize("rocket launch into orbit telescope")),
            Topic::kScience);
}

}  // namespace
}  // namespace emd
