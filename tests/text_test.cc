#include <gtest/gtest.h>

#include "text/token.h"
#include "text/tweet_tokenizer.h"
#include "text/vocabulary.h"

namespace emd {
namespace {

std::vector<std::string> Texts(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const auto& t : tokens) out.push_back(t.text);
  return out;
}

TEST(TweetTokenizerTest, BasicWordsAndPunct) {
  TweetTokenizer tok;
  auto t = tok.Tokenize("Beshear says hello , world .");
  EXPECT_EQ(Texts(t),
            (std::vector<std::string>{"Beshear", "says", "hello", ",", "world", "."}));
  EXPECT_EQ(t[3].kind, TokenKind::kPunct);
}

TEST(TweetTokenizerTest, MentionsHashtagsUrls) {
  TweetTokenizer tok;
  auto t = tok.Tokenize("@user1 check #Covid19 at https://t.co/abc now");
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[0].kind, TokenKind::kMention);
  EXPECT_EQ(t[0].text, "@user1");
  EXPECT_EQ(t[2].kind, TokenKind::kHashtag);
  EXPECT_EQ(t[2].text, "#Covid19");
  EXPECT_EQ(t[4].kind, TokenKind::kUrl);
  EXPECT_EQ(t[4].text, "https://t.co/abc");
}

TEST(TweetTokenizerTest, UrlDropsTrailingSentencePunct) {
  TweetTokenizer tok;
  auto t = tok.Tokenize("see www.example.com.");
  ASSERT_GE(t.size(), 2u);
  EXPECT_EQ(t[1].text, "www.example.com");
  EXPECT_EQ(t[1].kind, TokenKind::kUrl);
}

TEST(TweetTokenizerTest, Emoticons) {
  TweetTokenizer tok;
  auto t = tok.Tokenize("great news :) sad day :(");
  EXPECT_EQ(t[2].kind, TokenKind::kEmoticon);
  EXPECT_EQ(t.back().kind, TokenKind::kEmoticon);
}

TEST(TweetTokenizerTest, ContractionsStayTogether) {
  TweetTokenizer tok;
  auto t = tok.Tokenize("he's asking mayors");
  EXPECT_EQ(t[0].text, "he's");
}

TEST(TweetTokenizerTest, HyphenatedWord) {
  TweetTokenizer tok;
  auto t = tok.Tokenize("BY-PASS the city");
  EXPECT_EQ(t[0].text, "BY-PASS");
}

TEST(TweetTokenizerTest, PunctRunsCollapse) {
  TweetTokenizer tok;
  auto t = tok.Tokenize("wow!!! ok??");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[1].text, "!!!");
  EXPECT_EQ(t[3].text, "??");
}

TEST(TweetTokenizerTest, NumbersClassified) {
  TweetTokenizer tok;
  auto t = tok.Tokenize("cases up 1234 today");
  EXPECT_EQ(t[2].kind, TokenKind::kNumber);
}

TEST(TweetTokenizerTest, OffsetsMatchSource) {
  TweetTokenizer tok;
  const std::string text = "WE JUST BY-PASS Italy WITH #CORONAVIRUS :)";
  auto tokens = tok.Tokenize(text);
  for (const auto& t : tokens) {
    ASSERT_LE(t.end, text.size());
    EXPECT_EQ(text.substr(t.begin, t.end - t.begin), t.text);
  }
}

TEST(TweetTokenizerTest, EmptyAndWhitespaceOnly) {
  TweetTokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("   \t\n").empty());
}

TEST(TokenTest, SpanText) {
  TweetTokenizer tok;
  auto t = tok.Tokenize("Andy Beshear says");
  EXPECT_EQ(SpanText(t, {0, 2}), "Andy Beshear");
  EXPECT_EQ(TokensText(t), "Andy Beshear says");
}

TEST(VocabularyTest, ReservedIds) {
  Vocabulary v;
  EXPECT_EQ(v.size(), 2);
  EXPECT_EQ(v.Id("<pad>"), Vocabulary::kPadId);
  EXPECT_EQ(v.Id("<unk>"), Vocabulary::kUnkId);
  EXPECT_EQ(v.Id("missing"), Vocabulary::kUnkId);
}

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary v;
  int id = v.Add("virus");
  EXPECT_EQ(v.Add("virus"), id);  // idempotent
  EXPECT_EQ(v.Id("virus"), id);
  EXPECT_EQ(v.Token(id), "virus");
  EXPECT_TRUE(v.Contains("virus"));
  EXPECT_FALSE(v.Contains("other"));
}

TEST(VocabularyTest, FromCountsOrdersAndPrunes) {
  std::unordered_map<std::string, int> counts = {
      {"common", 10}, {"mid", 5}, {"rare", 1}};
  Vocabulary v = Vocabulary::FromCounts(counts, 2);
  EXPECT_TRUE(v.Contains("common"));
  EXPECT_TRUE(v.Contains("mid"));
  EXPECT_FALSE(v.Contains("rare"));
  EXPECT_LT(v.Id("common"), v.Id("mid"));  // higher count -> earlier id
}

TEST(VocabularyTest, SerializeRoundTrip) {
  Vocabulary v;
  v.Add("alpha");
  v.Add("beta");
  auto r = Vocabulary::Deserialize(v.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), v.size());
  EXPECT_EQ(r->Id("beta"), v.Id("beta"));
}

TEST(VocabularyTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Vocabulary::Deserialize("not a vocab").ok());
  EXPECT_FALSE(Vocabulary::Deserialize("").ok());
}

}  // namespace
}  // namespace emd
