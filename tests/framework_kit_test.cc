// FrameworkKit tests: model caching across kit instances, environment-driven
// options, and kind metadata.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "core/framework_kit.h"
#include "core/globalizer.h"
#include "stream/datasets.h"

namespace emd {
namespace {

TEST(FrameworkKitTest, KindNamesMatchPaper) {
  EXPECT_STREQ(SystemKindName(SystemKind::kNpChunker), "NP Chunker");
  EXPECT_STREQ(SystemKindName(SystemKind::kTwitterNlp), "TwitterNLP");
  EXPECT_STREQ(SystemKindName(SystemKind::kAguilar), "Aguilar et al.");
  EXPECT_STREQ(SystemKindName(SystemKind::kBertweet), "BERTweet");
}

TEST(FrameworkKitTest, OptionsFromEnv) {
  setenv("EMD_SCALE", "0.25", 1);
  setenv("EMD_TRAIN_TWEETS", "1234", 1);
  setenv("EMD_CACHE_DIR", "/tmp/emd_env_cache", 1);
  FrameworkKitOptions opt = FrameworkKitOptions::FromEnv();
  EXPECT_DOUBLE_EQ(opt.scale, 0.25);
  EXPECT_EQ(opt.training_tweets, 1234);
  EXPECT_EQ(opt.cache_dir, "/tmp/emd_env_cache");
  unsetenv("EMD_SCALE");
  unsetenv("EMD_TRAIN_TWEETS");
  unsetenv("EMD_CACHE_DIR");
}

TEST(FrameworkKitTest, CacheReloadReproducesPredictions) {
  const std::string cache =
      (std::filesystem::temp_directory_path() / "emd_kit_cache_test").string();
  std::filesystem::remove_all(cache);

  FrameworkKitOptions opt;
  opt.scale = 0.02;
  opt.training_tweets = 300;
  opt.cache_dir = cache;
  opt.use_cache = true;
  opt.seed = 99;

  std::vector<std::vector<TokenSpan>> first, second;
  {
    FrameworkKit kit(opt);
    Dataset stream = BuildD1(kit.catalog(), kit.suite_options());
    LocalEmdSystem* sys = kit.system(SystemKind::kTwitterNlp);
    for (const auto& t : stream.tweets) first.push_back(sys->Process(t.tokens).mentions);
  }
  {
    // Fresh kit, same cache: must load, not retrain, and match exactly.
    FrameworkKit kit(opt);
    Dataset stream = BuildD1(kit.catalog(), kit.suite_options());
    LocalEmdSystem* sys = kit.system(SystemKind::kTwitterNlp);
    for (const auto& t : stream.tweets)
      second.push_back(sys->Process(t.tokens).mentions);
  }
  EXPECT_EQ(first, second);
  EXPECT_TRUE(std::filesystem::exists(cache));
  std::filesystem::remove_all(cache);
}

TEST(FrameworkKitTest, SeedChangesWorld) {
  FrameworkKitOptions a;
  a.scale = 0.02;
  a.use_cache = false;
  a.seed = 1;
  FrameworkKitOptions b = a;
  b.seed = 2;
  FrameworkKit ka(a), kb(b);
  EXPECT_NE(ka.catalog().entity(0).CanonicalName(),
            kb.catalog().entity(0).CanonicalName());
}

}  // namespace
}  // namespace emd
