// Edge-case battery across modules: tokenizer corner inputs, dropout
// statistics, embedding pad-row invariants, extractor boundary conditions,
// Finalize idempotence, and diagnostic-count consistency.

#include <gtest/gtest.h>

#include "core/globalizer.h"
#include "mock_local_system.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/optimizer.h"
#include "text/tweet_tokenizer.h"
#include "util/rng.h"

namespace emd {
namespace {

// ------------------------------------------------------------- tokenizer

TEST(TokenizerEdgeTest, LoneMarkersArePunct) {
  TweetTokenizer tok;
  auto a = tok.Tokenize("# and @ alone");
  EXPECT_EQ(a[0].kind, TokenKind::kPunct);
  EXPECT_EQ(a[2].kind, TokenKind::kPunct);
}

TEST(TokenizerEdgeTest, AbbreviationWithPeriods) {
  TweetTokenizer tok;
  auto a = tok.Tokenize("the U.S. economy");
  ASSERT_GE(a.size(), 3u);
  EXPECT_EQ(a[1].text, "U.S.");
}

TEST(TokenizerEdgeTest, EmoticonAfterWordIsNotEaten) {
  TweetTokenizer tok;
  // "word:D" — ':D' must not be split out of a word context wrongly; the
  // tokenizer requires a boundary before an emoticon.
  auto a = tok.Tokenize("ratio:D stays");
  EXPECT_EQ(a[0].text, "ratio");
  // ':D' follows a word char boundary via punctuation fallback.
}

TEST(TokenizerEdgeTest, HashtagMarkerSplitOption) {
  TweetTokenizerOptions opt;
  opt.keep_hashtag_marker = false;
  TweetTokenizer tok(opt);
  auto a = tok.Tokenize("#covid news");
  ASSERT_GE(a.size(), 3u);
  EXPECT_EQ(a[0].text, "#");
  EXPECT_EQ(a[1].text, "covid");
}

TEST(TokenizerEdgeTest, NumberWithSeparators) {
  TweetTokenizer tok;
  auto a = tok.Tokenize("cases hit 1,234 today");
  EXPECT_EQ(a[2].kind, TokenKind::kNumber);
  EXPECT_EQ(a[2].text, "1,234");
}

TEST(TokenizerEdgeTest, ValidUtf8GroupsIntoWordTokens) {
  TweetTokenizer tok;
  // "café" mixes ASCII and a two-byte sequence; "日本" is two three-byte
  // sequences grouped into one word token.
  auto a = tok.Tokenize("caf\xC3\xA9 \xE6\x97\xA5\xE6\x9C\xAC news");
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0].text, "caf");
  EXPECT_EQ(a[1].text, "\xC3\xA9");
  EXPECT_EQ(a[1].kind, TokenKind::kWord);
  EXPECT_EQ(a[2].text, "\xE6\x97\xA5\xE6\x9C\xAC");
  EXPECT_EQ(a[2].kind, TokenKind::kWord);
  EXPECT_EQ(a[3].text, "news");
}

TEST(TokenizerEdgeTest, InvalidUtf8BytesNeverReachTokens) {
  TweetTokenizer tok;
  // Stray continuation byte, truncated 3-byte sequence, overlong encoding of
  // '/', and a lone 0xFF — all dropped; surrounding ASCII survives.
  auto a = tok.Tokenize("ok \x80 mid\xE6\x97 end \xC0\xAF\xFF done");
  std::vector<std::string> texts;
  for (const Token& t : a) texts.push_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"ok", "mid", "end", "done"}));
  for (const Token& t : a) {
    for (char c : t.text) {
      EXPECT_LT(static_cast<unsigned char>(c), 0x80u)
          << "invalid byte leaked into token \"" << t.text << "\"";
    }
  }
}

TEST(TokenizerEdgeTest, Utf16SurrogateEncodingIsRejected) {
  TweetTokenizer tok;
  // ED A0 80 encodes U+D800, a UTF-16 surrogate — invalid in UTF-8.
  auto a = tok.Tokenize("a \xED\xA0\x80 b");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].text, "a");
  EXPECT_EQ(a[1].text, "b");
}

TEST(TokenizerEdgeTest, OversizedTokenSplitsAtCap) {
  TweetTokenizerOptions opt;
  opt.max_token_bytes = 8;
  TweetTokenizer tok(opt);
  auto a = tok.Tokenize(std::string(20, 'a'));
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].text.size(), 8u);
  EXPECT_EQ(a[1].text.size(), 8u);
  EXPECT_EQ(a[2].text.size(), 4u);
  // Offsets stay exact across the split.
  EXPECT_EQ(a[1].begin, 8u);
  EXPECT_EQ(a[2].end, 20u);
}

TEST(TokenizerEdgeTest, TokenCapRespectsUtf8Boundaries) {
  TweetTokenizerOptions opt;
  opt.max_token_bytes = 5;
  TweetTokenizer tok(opt);
  // Three two-byte sequences (6 bytes): the cap must cut at 4 bytes, never
  // down the middle of a sequence.
  auto a = tok.Tokenize("\xC3\xA9\xC3\xA9\xC3\xA9");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].text, "\xC3\xA9\xC3\xA9");
  EXPECT_EQ(a[1].text, "\xC3\xA9");
}

TEST(TokenizerEdgeTest, OversizedTweetTruncatesAtUtf8Boundary) {
  TweetTokenizerOptions opt;
  opt.max_text_bytes = 10;
  TweetTokenizer tok(opt);
  // Byte 10 falls inside the final two-byte sequence; the whole sequence
  // must be dropped rather than leaving a torn lead byte.
  auto a = tok.Tokenize("abcdefgh \xC3\xA9xyz");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].text, "abcdefgh");
}

// --------------------------------------------------------------- dropout

TEST(DropoutTest, EvalModeIsIdentity) {
  Dropout drop(0.5f);
  Rng rng(1);
  Mat x(4, 8);
  x.InitGaussian(&rng, 1.f);
  Mat y = drop.Forward(x, /*training=*/false, &rng);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(x.data()[i], y.data()[i]);
  // Backward in eval mode is identity too.
  Mat dy(4, 8);
  dy.Fill(1.f);
  Mat dx = drop.Backward(dy);
  for (size_t i = 0; i < dx.size(); ++i) EXPECT_FLOAT_EQ(dx.data()[i], 1.f);
}

TEST(DropoutTest, TrainingPreservesExpectation) {
  Dropout drop(0.3f);
  Rng rng(2);
  Mat x(1, 20000);
  x.Fill(1.f);
  Mat y = drop.Forward(x, /*training=*/true, &rng);
  double mean = 0;
  int zeros = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    mean += y.data()[i];
    if (y.data()[i] == 0.f) ++zeros;
  }
  mean /= y.size();
  EXPECT_NEAR(mean, 1.0, 0.03) << "inverted dropout must preserve expectation";
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.3, 0.02);
}

TEST(DropoutTest, ZeroRateIsAlwaysIdentity) {
  Dropout drop(0.f);
  Rng rng(3);
  Mat x(2, 4);
  x.InitGaussian(&rng, 1.f);
  Mat y = drop.Forward(x, /*training=*/true, &rng);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(x.data()[i], y.data()[i]);
}

// ------------------------------------------------------------- embedding

TEST(EmbeddingTest, PadRowStaysZeroThroughTraining) {
  Rng rng(4);
  Embedding emb(6, 3, &rng);
  for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(emb.table()(0, j), 0.f);
  ParamSet params;
  emb.CollectParams(&params);
  AdamOptimizer adam(0.1f);
  for (int step = 0; step < 5; ++step) {
    params.ZeroGrads();
    Mat out = emb.Forward({0, 2, 0, 3});
    Mat dy(4, 3);
    dy.Fill(1.f);
    emb.Backward(dy);
    // Pad-row grads must be zero so the optimizer cannot move it.
    adam.Step(&params);
  }
  for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(emb.table()(0, j), 0.f);
}

// ------------------------------------------------------------ extractor

TEST(ExtractorEdgeTest, CandidateAtSentenceEnd) {
  CTrie trie;
  trie.Insert({"beshear"});
  MentionExtractor ex(&trie);
  auto toks = TweetTokenizer().Tokenize("a statement from Beshear");
  auto mentions = ex.Extract(toks);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].span.end, toks.size());
}

TEST(ExtractorEdgeTest, CandidateLongerThanSentence) {
  CTrie trie;
  trie.Insert({"one", "two", "three", "four"});
  MentionExtractor ex(&trie);
  auto toks = TweetTokenizer().Tokenize("one two three");
  EXPECT_TRUE(ex.Extract(toks).empty());
}

TEST(ExtractorEdgeTest, EmptySentence) {
  CTrie trie;
  trie.Insert({"x"});
  MentionExtractor ex(&trie);
  EXPECT_TRUE(ex.Extract({}).empty());
}

TEST(ExtractorEdgeTest, RepeatedAdjacentMentions) {
  CTrie trie;
  trie.Insert({"goal"});
  MentionExtractor ex(&trie);
  auto toks = TweetTokenizer().Tokenize("goal goal goal");
  EXPECT_EQ(ex.Extract(toks).size(), 3u);
}

// ----------------------------------------------------------- globalizer

AnnotatedTweet Tw(long id, const std::string& text) {
  AnnotatedTweet t;
  t.tweet_id = id;
  t.text = text;
  t.tokens = TweetTokenizer().Tokenize(text);
  return t;
}

TEST(GlobalizerEdgeTest, FinalizeMentionsAreStableAcrossCalls) {
  Dataset d;
  d.tweets = {Tw(1, "Beshear spoke about coronavirus"),
              Tw(2, "more on beshear and Coronavirus")};
  MockLocalSystem mock({{.phrase = {"beshear"}, .require_capitalized = true},
                        {.phrase = {"coronavirus"}, .require_capitalized = true}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  ASSERT_TRUE(g.ProcessBatch(std::span<const AnnotatedTweet>(d.tweets.data(), d.tweets.size())).ok());
  GlobalizerOutput a = g.Finalize().value();
  GlobalizerOutput b = g.Finalize().value();
  EXPECT_EQ(a.mentions, b.mentions);
}

TEST(GlobalizerEdgeTest, DiagnosticCountsAreConsistent) {
  Dataset d;
  d.tweets = {Tw(1, "Beshear spoke in Northfield today"),
              Tw(2, "beshear and northfield again tonight"),
              Tw(3, "Beshear warns Northfield residents")};
  MockLocalSystem mock({{.phrase = {"beshear"}, .require_capitalized = true},
                        {.phrase = {"northfield"}, .require_capitalized = true}});
  EntityClassifier clf({.input_dim = 7});
  std::vector<ClassifierExample> examples;
  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    Mat pos(1, 6);
    pos(0, 0) = 1;
    examples.push_back({EntityClassifier::MakeFeatures(pos, 1), true});
    Mat neg(1, 6);
    neg(0, 4) = 1;
    examples.push_back({EntityClassifier::MakeFeatures(neg, 1), false});
  }
  clf.Train(examples, {.max_epochs = 40});
  Globalizer g(&mock, nullptr, &clf, {});
  GlobalizerOutput out = g.Run(d).value();
  EXPECT_EQ(out.num_candidates,
            out.num_entity + out.num_non_entity + out.num_ambiguous);
  EXPECT_GE(out.num_candidates, 2);
}

TEST(GlobalizerEdgeTest, EmptyDataset) {
  Dataset d;
  MockLocalSystem mock({});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  GlobalizerOutput out = g.Run(d).value();
  EXPECT_TRUE(out.mentions.empty());
  EXPECT_EQ(out.num_candidates, 0);
}

TEST(GlobalizerEdgeTest, TweetsWithNoTokens) {
  Dataset d;
  AnnotatedTweet empty;
  empty.tweet_id = 1;
  d.tweets.push_back(empty);
  d.tweets.push_back(Tw(2, "Beshear speaks"));
  MockLocalSystem mock({{.phrase = {"beshear"}}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  GlobalizerOutput out = g.Run(d).value();
  ASSERT_EQ(out.mentions.size(), 2u);
  EXPECT_TRUE(out.mentions[0].empty());
  EXPECT_EQ(out.mentions[1].size(), 1u);
}

}  // namespace
}  // namespace emd
