// Degenerate-shape tests: length-1 sequences, single labels, truncation
// paths, and empty structures — the inputs that break naive index math.

#include <gtest/gtest.h>

#include "emd/mini_bertweet.h"
#include "nn/crf.h"
#include "nn/lstm.h"
#include "nn/transformer.h"
#include "stream/datasets.h"
#include "text/tweet_tokenizer.h"
#include "util/rng.h"

namespace emd {
namespace {

TEST(DegenerateTest, LstmSingleStep) {
  Rng rng(1);
  Lstm lstm(3, 2, &rng);
  Mat x(1, 3);
  x.InitGaussian(&rng, 1.f);
  Mat h = lstm.Forward(x);
  EXPECT_EQ(h.rows(), 1);
  Mat dh(1, 2);
  dh.Fill(1.f);
  Mat dx = lstm.Backward(dh);
  EXPECT_EQ(dx.rows(), 1);
  EXPECT_EQ(dx.cols(), 3);
}

TEST(DegenerateTest, BiLstmSingleStep) {
  Rng rng(2);
  BiLstm bilstm(3, 2, &rng);
  Mat x(1, 3);
  x.InitGaussian(&rng, 1.f);
  EXPECT_EQ(bilstm.Forward(x).cols(), 4);
}

TEST(DegenerateTest, TransformerSingleToken) {
  Rng rng(3);
  TransformerEncoderLayer enc(8, 2, 16, 0.f, &rng);
  Mat x(1, 8);
  x.InitGaussian(&rng, 1.f);
  Mat y = enc.Forward(x, false, &rng);
  EXPECT_EQ(y.rows(), 1);
  Mat dy(1, 8);
  dy.Fill(1.f);
  EXPECT_EQ(enc.Backward(dy).rows(), 1);
}

TEST(DegenerateTest, CrfSingleToken) {
  Rng rng(4);
  LinearChainCrf crf(3, &rng);
  Mat e(1, 3);
  e(0, 2) = 10.f;
  EXPECT_EQ(crf.Viterbi(e), (std::vector<int>{2}));
  Mat de;
  const double nll = crf.NegLogLikelihood(e, {2}, &de);
  EXPECT_GE(nll, 0.0);
  Mat m = crf.Marginals(e);
  EXPECT_GT(m(0, 2), 0.9f);
}

TEST(DegenerateTest, CrfEmptySequenceViterbi) {
  Rng rng(5);
  LinearChainCrf crf(3, &rng);
  EXPECT_TRUE(crf.Viterbi(Mat(0, 3)).empty());
}

TEST(DegenerateTest, MiniBertweetTruncatesVeryLongSentences) {
  MiniBertweetOptions opt;
  opt.d_model = 16;
  opt.num_heads = 2;
  opt.d_ff = 32;
  opt.num_layers = 1;
  opt.max_positions = 24;  // tiny cap to force truncation
  MiniBertweetSystem net(opt);

  EntityCatalogOptions copt;
  copt.entities_per_topic = 40;
  copt.seed = 17;
  EntityCatalog catalog = EntityCatalog::Build(copt);
  Dataset train = BuildTrainingCorpus(catalog, 120, 5);
  net.Train(train, {.epochs = 1});

  // A sentence with far more subword pieces than max_positions.
  std::vector<Token> long_sentence;
  for (int i = 0; i < 80; ++i) {
    Token t;
    t.text = "word" + std::to_string(i);
    t.kind = TokenKind::kWord;
    long_sentence.push_back(t);
  }
  LocalEmdResult r = net.Process(long_sentence);
  EXPECT_EQ(r.token_embeddings.rows(), 80) << "one embedding per word even "
                                              "when pieces truncate";
}

TEST(DegenerateTest, MatZeroDimensions) {
  Mat empty;
  EXPECT_TRUE(empty.empty());
  Mat zero_rows(0, 5);
  EXPECT_EQ(zero_rows.size(), 0u);
  Mat t = Transpose(zero_rows);
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.cols(), 0);
}

TEST(DegenerateTest, TokenizerSingleChars) {
  TweetTokenizer tok;
  EXPECT_EQ(tok.Tokenize("a").size(), 1u);
  EXPECT_EQ(tok.Tokenize(".").size(), 1u);
  EXPECT_EQ(tok.Tokenize("@").size(), 1u);
  EXPECT_EQ(tok.Tokenize("9").size(), 1u);
}

}  // namespace
}  // namespace emd
