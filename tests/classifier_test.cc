// Entity Classifier and Phrase Embedder unit tests.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/entity_classifier.h"
#include "core/phrase_embedder.h"
#include "mock_local_system.h"
#include "stream/sts_generator.h"
#include "text/tweet_tokenizer.h"
#include "util/rng.h"

namespace emd {
namespace {

std::vector<ClassifierExample> SeparableExamples(int n, uint64_t seed) {
  std::vector<ClassifierExample> out;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Mat pos(1, 6);
    pos(0, 0) = rng.NextFloat(0.6f, 1.f);
    pos(0, 4) = 1.f - pos(0, 0);
    out.push_back({EntityClassifier::MakeFeatures(pos, rng.NextInt(1, 3)), true});
    Mat neg(1, 6);
    neg(0, 4) = rng.NextFloat(0.6f, 1.f);
    neg(0, 1) = 1.f - neg(0, 4);
    out.push_back({EntityClassifier::MakeFeatures(neg, 1), false});
  }
  return out;
}

TEST(EntityClassifierTest, MakeFeaturesAppendsLength) {
  Mat emb(1, 6);
  emb(0, 2) = 0.5f;
  Mat f = EntityClassifier::MakeFeatures(emb, 2);
  EXPECT_EQ(f.cols(), 7);
  EXPECT_FLOAT_EQ(f(0, 2), 0.5f);
  EXPECT_FLOAT_EQ(f(0, 6), 0.5f);  // 2 tokens / 4
}

TEST(EntityClassifierTest, LearnsSeparableData) {
  EntityClassifier clf({.input_dim = 7});
  auto report = clf.Train(SeparableExamples(400, 1), {.max_epochs = 300});
  EXPECT_GT(report.best_validation_f1, 0.95);
  EXPECT_GT(report.epochs_run, 0);
  EXPECT_EQ(report.num_train + report.num_validation, 800);
}

TEST(EntityClassifierTest, ThresholdsMapToLabels) {
  EntityClassifier clf({.input_dim = 7});
  clf.Train(SeparableExamples(400, 2), {.max_epochs = 300});
  Mat pos(1, 6);
  pos(0, 0) = 0.95f;
  pos(0, 4) = 0.05f;
  EXPECT_EQ(clf.Classify(EntityClassifier::MakeFeatures(pos, 2)),
            CandidateLabel::kEntity);
  Mat neg(1, 6);
  neg(0, 4) = 0.95f;
  neg(0, 1) = 0.05f;
  EXPECT_EQ(clf.Classify(EntityClassifier::MakeFeatures(neg, 1)),
            CandidateLabel::kNonEntity);
}

TEST(EntityClassifierTest, SaveLoadPreservesPredictions) {
  EntityClassifier clf({.input_dim = 7});
  auto examples = SeparableExamples(200, 3);
  clf.Train(examples, {.max_epochs = 100});
  const std::string path =
      (std::filesystem::temp_directory_path() / "emd_clf_test.bin").string();
  ASSERT_TRUE(clf.Save(path).ok());
  EntityClassifier loaded({.input_dim = 7});
  ASSERT_TRUE(loaded.Load(path).ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_FLOAT_EQ(clf.Probability(examples[i].features),
                    loaded.Probability(examples[i].features));
  }
  std::filesystem::remove(path);
}

TEST(EntityClassifierTest, LoadRejectsWrongShape) {
  EntityClassifier clf({.input_dim = 7});
  clf.Train(SeparableExamples(50, 4), {.max_epochs = 10});
  const std::string path =
      (std::filesystem::temp_directory_path() / "emd_clf_test2.bin").string();
  ASSERT_TRUE(clf.Save(path).ok());
  EntityClassifier other({.input_dim = 101});
  EXPECT_FALSE(other.Load(path).ok());
  std::filesystem::remove(path);
}

// ------------------------------------------------------------ PhraseEmbedder

TEST(PhraseEmbedderTest, EmbedSpanEqualsManualPool) {
  PhraseEmbedder pe(4, 3, 7);
  Rng rng(8);
  Mat tokens(5, 4);
  tokens.InitGaussian(&rng, 1.f);
  Mat span_emb = pe.Embed(tokens, {1, 4});
  // Manual: mean rows 1..3 through the same affine map via EmbedAll on the
  // sliced matrix.
  Mat sliced(3, 4);
  for (int r = 0; r < 3; ++r) sliced.SetRow(r, tokens.row(r + 1));
  Mat expected = pe.EmbedAll(sliced);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(span_emb(0, j), expected(0, j), 1e-5);
}

TEST(PhraseEmbedderTest, TrainingImprovesValidationLoss) {
  // Deep mock: embeddings are deterministic per word, so similar sentences
  // pool to similar vectors — the embedder should learn a projection whose
  // cosine tracks the synthetic scores better than at initialization.
  EntityCatalogOptions copt;
  copt.entities_per_topic = 60;
  copt.seed = 77;
  EntityCatalog catalog = EntityCatalog::Build(copt);
  StsGeneratorOptions sopt;
  sopt.num_train_pairs = 300;
  sopt.num_val_pairs = 80;
  StsData sts = GenerateStsData(catalog, sopt);

  MockLocalSystem deep_mock({}, /*dim=*/16);
  PhraseEmbedder pe(16, 8, 9);
  const double before = pe.Evaluate(&deep_mock, sts.validation);
  PhraseEmbedderTrainOptions topt;
  topt.max_epochs = 40;
  topt.early_stop_patience = 10;
  auto report = pe.Train(&deep_mock, sts, topt);
  EXPECT_LT(report.best_validation_loss, before);
  EXPECT_GT(report.epochs_run, 0);
  const double after = pe.Evaluate(&deep_mock, sts.validation);
  EXPECT_NEAR(after, report.best_validation_loss, 5e-2);
}

TEST(PhraseEmbedderTest, SaveLoadRoundTrip) {
  PhraseEmbedder pe(6, 4, 10);
  const std::string path =
      (std::filesystem::temp_directory_path() / "emd_pe_test.bin").string();
  ASSERT_TRUE(pe.Save(path).ok());
  PhraseEmbedder loaded(6, 4, 999);  // different init, overwritten by Load
  ASSERT_TRUE(loaded.Load(path).ok());
  Rng rng(11);
  Mat tokens(3, 6);
  tokens.InitGaussian(&rng, 1.f);
  Mat a = pe.Embed(tokens, {0, 2});
  Mat b = loaded.Embed(tokens, {0, 2});
  for (int j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(a(0, j), b(0, j));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace emd
