// Unit tests for the network ingestion front-end: wire-protocol framing
// (torn reads, corruption, hostile length prefixes) and the admission layer
// (watermark hysteresis, token buckets, DRR fairness, deadline propagation,
// drain semantics) — all on a FakeClock, no sockets.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "net/admission.h"
#include "net/wire.h"
#include "stream/ingest_queue.h"
#include "util/failpoint.h"

namespace emd {
namespace net {
namespace {

AnnotatedTweet MakeTweet(int64_t id, const std::string& text = "hello") {
  AnnotatedTweet tweet;
  tweet.tweet_id = id;
  tweet.text = text;
  return tweet;
}

// --- Wire protocol ---

TEST(WireTest, RoundTripsEveryFrameType) {
  std::string bytes;
  AppendHello(&bytes, "client-7");
  TweetFrame tweet;
  tweet.seq = 42;
  tweet.tweet_id = -5;
  tweet.topic_id = 3;
  tweet.deadline_ms = 250;
  tweet.text = "Rockets game in Houston tonight";
  AppendTweet(&bytes, tweet);
  AppendAck(&bytes, 42);
  RetryAfterFrame retry;
  retry.seq = 43;
  retry.retry_after_ms = 125;
  retry.reason = RejectReason::kThrottled;
  AppendRetryAfter(&bytes, retry);
  AppendBye(&bytes, "done");

  FrameDecoder decoder;
  decoder.Feed(bytes);

  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kFrame);
  ASSERT_EQ(frame.type, FrameType::kHello);
  const HelloFrame hello = ParseHello(frame).value();
  EXPECT_EQ(hello.client_id, "client-7");
  EXPECT_TRUE(hello.stream.empty());

  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kFrame);
  ASSERT_EQ(frame.type, FrameType::kTweet);
  const TweetFrame decoded = ParseTweet(frame).value();
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.tweet_id, -5);
  EXPECT_EQ(decoded.topic_id, 3);
  EXPECT_EQ(decoded.deadline_ms, 250u);
  EXPECT_EQ(decoded.text, tweet.text);

  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kFrame);
  ASSERT_EQ(frame.type, FrameType::kAck);
  EXPECT_EQ(ParseAck(frame).value(), 42u);

  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kFrame);
  ASSERT_EQ(frame.type, FrameType::kRetryAfter);
  const RetryAfterFrame rdecoded = ParseRetryAfter(frame).value();
  EXPECT_EQ(rdecoded.seq, 43u);
  EXPECT_EQ(rdecoded.retry_after_ms, 125u);
  EXPECT_EQ(rdecoded.reason, RejectReason::kThrottled);

  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kBye);

  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireTest, HelloStreamFieldRoundTripsAndStaysOptional) {
  // With a stream name the trailing field round-trips.
  std::string bytes;
  AppendHello(&bytes, "client-7", "nba");
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kFrame);
  const HelloFrame hello = ParseHello(frame).value();
  EXPECT_EQ(hello.client_id, "client-7");
  EXPECT_EQ(hello.stream, "nba");

  // Without one, the frame is byte-identical to the pre-multi-stream
  // protocol: old servers read it and new servers see an empty stream.
  std::string v1_bytes;
  AppendHello(&v1_bytes, "client-7");
  std::string explicit_empty;
  AppendHello(&explicit_empty, "client-7", "");
  EXPECT_EQ(v1_bytes, explicit_empty);
}

TEST(WireTest, DecodesAcrossArbitraryReadBoundaries) {
  TweetFrame tweet;
  tweet.seq = 9;
  tweet.text = "torn across many reads";
  std::string bytes;
  AppendTweet(&bytes, tweet);
  AppendAck(&bytes, 9);

  // Feed one byte at a time: every intermediate state is kNeedMore, never an
  // error, and both frames come out intact.
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (char c : bytes) {
    decoder.Feed(std::string_view(&c, 1));
    Frame frame;
    while (decoder.Next(&frame) == FrameDecoder::NextStatus::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(ParseTweet(frames[0]).value().text, tweet.text);
  EXPECT_EQ(ParseAck(frames[1]).value(), 9u);
}

TEST(WireTest, CrcFlipPoisonsTheDecoder) {
  std::string bytes;
  AppendAck(&bytes, 77);
  bytes[bytes.size() - 1] ^= 0x01;  // flip a CRC bit

  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kCorrupt);
  EXPECT_TRUE(decoder.last_error().IsCorruption());

  // Poisoned: even a pristine frame afterwards is refused (no resync on a
  // byte stream).
  std::string good;
  AppendAck(&good, 78);
  decoder.Feed(good);
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kCorrupt);
}

TEST(WireTest, PayloadFlipFailsTheCrc) {
  std::string bytes;
  AppendHello(&bytes, "abcdef");
  bytes[bytes.size() - 7] ^= 0x40;  // flip a payload bit

  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kCorrupt);
}

TEST(WireTest, BadMagicIsCorruption) {
  FrameDecoder decoder;
  decoder.Feed("this is not a frame at all!!");
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kCorrupt);
}

TEST(WireTest, HostileLengthPrefixRejectedBeforeBuffering) {
  // A valid frame, then rewrite its length prefix to 256 MiB: the decoder
  // must reject on the header alone instead of waiting to buffer 256 MiB.
  std::string bytes;
  AppendAck(&bytes, 1);
  const uint32_t huge = 256u * 1024 * 1024;
  bytes[4] = static_cast<char>(huge & 0xff);
  bytes[5] = static_cast<char>((huge >> 8) & 0xff);
  bytes[6] = static_cast<char>((huge >> 16) & 0xff);
  bytes[7] = static_cast<char>((huge >> 24) & 0xff);

  FrameDecoder decoder;
  decoder.Feed(bytes.substr(0, 9));  // header only
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kCorrupt);
  EXPECT_TRUE(decoder.last_error().IsCorruption());
}

TEST(WireTest, DecodeFailpointInjectsCorruption) {
  failpoint::EnableAfter("net.wire.decode",
                         Status::Corruption("injected torn frame"));
  std::string bytes;
  AppendAck(&bytes, 5);
  FrameDecoder decoder;
  decoder.Feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::NextStatus::kCorrupt);
  failpoint::DisableAll();
}

TEST(WireTest, ParseRejectsWrongTypeAndShortPayloads) {
  Frame frame;
  frame.type = FrameType::kAck;
  frame.payload = "abc";  // too short for a u64
  EXPECT_FALSE(ParseAck(frame).ok());
  frame.type = FrameType::kHello;
  EXPECT_FALSE(ParseAck(frame).ok());  // type mismatch
}

// --- Admission control ---

TEST(AdmissionTest, AcceptsStagesAndDrains) {
  FakeClock clock;
  IngestQueue queue({.capacity = 8});
  AdmissionOptions options;
  options.clock = &clock;
  AdmissionController admission(&queue, options);

  EXPECT_TRUE(admission.Offer("a", MakeTweet(1), 0).accepted);
  EXPECT_TRUE(admission.Offer("a", MakeTweet(2), 0).accepted);
  EXPECT_EQ(admission.staged(), 2u);

  std::vector<std::string> admitted_clients;
  const size_t moved = admission.DrainInto(
      8, nullptr,
      [&](const StagedTweet& t) { admitted_clients.push_back(t.client_id); });
  EXPECT_EQ(moved, 2u);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(admission.staged(), 0u);
  ASSERT_EQ(admitted_clients.size(), 2u);
  EXPECT_EQ(admitted_clients[0], "a");
}

TEST(AdmissionTest, WatermarkHysteresisLatchesAndReleases) {
  FakeClock clock;
  IngestQueue queue({.capacity = 100});
  AdmissionOptions options;
  options.clock = &clock;
  options.high_watermark = 4;
  options.low_watermark = 2;
  AdmissionController admission(&queue, options);

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(admission.Offer("a", MakeTweet(i), 0).accepted) << i;
  }
  // Backlog reached the high watermark: overload latches.
  const AdmissionDecision rejected = admission.Offer("a", MakeTweet(99), 0);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.reason, RejectReason::kBackpressure);
  EXPECT_GT(rejected.retry_after_ms, 0u);
  EXPECT_TRUE(admission.overloaded());

  // Drain to 3 (between low and high): hysteresis keeps rejecting.
  admission.DrainInto(1, nullptr);
  queue.PopBatch(100);
  EXPECT_EQ(admission.backlog(), 3u);
  EXPECT_FALSE(admission.Offer("a", MakeTweet(100), 0).accepted);

  // Drain to the low watermark: overload unlatches, accepts resume.
  admission.DrainInto(1, nullptr);
  queue.PopBatch(100);
  EXPECT_EQ(admission.backlog(), 2u);
  EXPECT_TRUE(admission.Offer("a", MakeTweet(101), 0).accepted);
  EXPECT_FALSE(admission.overloaded());
}

TEST(AdmissionTest, RejectionsAreCountedOnTheQueue) {
  FakeClock clock;
  IngestQueue queue({.capacity = 100});
  AdmissionOptions options;
  options.clock = &clock;
  options.high_watermark = 2;
  options.low_watermark = 1;
  AdmissionController admission(&queue, options);

  ASSERT_TRUE(admission.Offer("a", MakeTweet(1), 0).accepted);
  ASSERT_TRUE(admission.Offer("a", MakeTweet(2), 0).accepted);
  ASSERT_FALSE(admission.Offer("a", MakeTweet(3), 0).accepted);
  ASSERT_FALSE(admission.Offer("a", MakeTweet(4), 0).accepted);
  // Satellite accounting: admission rejections are distinct from queue
  // backpressure (rejected) and load shedding (shed).
  EXPECT_EQ(queue.stats().admission_rejected, 2u);
  EXPECT_EQ(queue.stats().rejected, 0u);
  EXPECT_EQ(queue.stats().shed, 0u);
}

TEST(AdmissionTest, TokenBucketThrottlesAndRefills) {
  FakeClock clock;
  IngestQueue queue({.capacity = 100});
  AdmissionOptions options;
  options.clock = &clock;
  options.tokens_per_second = 10;  // one token every 100ms
  options.burst_tokens = 2;
  AdmissionController admission(&queue, options);

  EXPECT_TRUE(admission.Offer("a", MakeTweet(1), 0).accepted);
  EXPECT_TRUE(admission.Offer("a", MakeTweet(2), 0).accepted);
  const AdmissionDecision throttled = admission.Offer("a", MakeTweet(3), 0);
  EXPECT_FALSE(throttled.accepted);
  EXPECT_EQ(throttled.reason, RejectReason::kThrottled);
  // The hint points at the bucket refill time, not a generic constant.
  EXPECT_GT(throttled.retry_after_ms, 0u);
  EXPECT_LE(throttled.retry_after_ms, 200u);

  // Another client has its own bucket.
  EXPECT_TRUE(admission.Offer("b", MakeTweet(4), 0).accepted);

  // After the refill interval the hint promised, the client gets in again.
  clock.Advance(uint64_t{throttled.retry_after_ms} * kMillisecond);
  EXPECT_TRUE(admission.Offer("a", MakeTweet(5), 0).accepted);
}

TEST(AdmissionTest, DeficitRoundRobinDrainsFairly) {
  FakeClock clock;
  IngestQueue queue({.capacity = 1000});
  AdmissionOptions options;
  options.clock = &clock;
  options.high_watermark = 1000;  // no overload in this test
  options.drr_quantum = 2;
  AdmissionController admission(&queue, options);

  // Client "hog" staged 30 tweets before "meek" staged 10.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(admission.Offer("hog", MakeTweet(i), 0).accepted);
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(admission.Offer("meek", MakeTweet(100 + i), 0).accepted);
  }

  // Drain 20 slots: DRR must not let the hog's head-of-line backlog starve
  // the meek client — both make progress proportionally to their quantum.
  std::vector<std::string> order;
  admission.DrainInto(20, nullptr, [&](const StagedTweet& t) {
    order.push_back(t.client_id);
  });
  ASSERT_EQ(order.size(), 20u);
  const size_t meek_count = static_cast<size_t>(
      std::count(order.begin(), order.end(), std::string("meek")));
  EXPECT_EQ(meek_count, 10u);  // fully drained despite the hog's backlog
  EXPECT_EQ(admission.staged(), 20u);
}

TEST(AdmissionTest, ExpiredDeadlinesDivertToTheSink) {
  FakeClock clock;
  IngestQueue queue({.capacity = 8});
  AdmissionOptions options;
  options.clock = &clock;
  AdmissionController admission(&queue, options);

  ASSERT_TRUE(admission.Offer("a", MakeTweet(1), /*deadline_ms=*/50).accepted);
  ASSERT_TRUE(admission.Offer("a", MakeTweet(2), /*deadline_ms=*/0).accepted);
  clock.Advance(60 * kMillisecond);  // tweet 1's budget lapses while staged

  std::vector<int64_t> expired_ids;
  const size_t moved = admission.DrainInto(8, [&](StagedTweet expired) {
    expired_ids.push_back(expired.tweet.tweet_id);
  });
  EXPECT_EQ(moved, 1u);  // only the un-deadlined tweet reached the queue
  ASSERT_EQ(expired_ids.size(), 1u);
  EXPECT_EQ(expired_ids[0], 1);
  EXPECT_EQ(admission.expired(), 1u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(AdmissionTest, DrainIntoStopsAtQueueCapacity) {
  FakeClock clock;
  IngestQueue queue({.capacity = 3});
  AdmissionOptions options;
  options.clock = &clock;
  options.staging_capacity = 100;
  options.high_watermark = 100;
  AdmissionController admission(&queue, options);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(admission.Offer("a", MakeTweet(i), 0).accepted);
  }
  EXPECT_EQ(admission.DrainInto(10, nullptr), 3u);  // queue full: backpressure
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(admission.staged(), 7u);
  // Nothing was shed: serving mode never drops an accepted tweet.
  EXPECT_EQ(queue.stats().shed, 0u);
}

TEST(AdmissionTest, DrainingRejectsEverythingAndFlushes) {
  FakeClock clock;
  IngestQueue queue({.capacity = 8});
  AdmissionOptions options;
  options.clock = &clock;
  AdmissionController admission(&queue, options);

  ASSERT_TRUE(admission.Offer("a", MakeTweet(1), /*deadline_ms=*/10).accepted);
  admission.BeginDrain();

  const AdmissionDecision rejected = admission.Offer("a", MakeTweet(2), 0);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.reason, RejectReason::kDraining);

  // TakeAllStaged flushes even expired tweets: an ACKed tweet is never
  // dropped at shutdown, it reaches the pipeline or the DLQ.
  clock.Advance(kSecond);
  std::vector<StagedTweet> flushed = admission.TakeAllStaged();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].tweet.tweet_id, 1);
  EXPECT_EQ(admission.staged(), 0u);
}

TEST(AdmissionTest, PerClientStatsTrackFairnessCounters) {
  FakeClock clock;
  IngestQueue queue({.capacity = 8});
  AdmissionOptions options;
  options.clock = &clock;
  options.tokens_per_second = 1;
  options.burst_tokens = 1;
  AdmissionController admission(&queue, options);

  ASSERT_TRUE(admission.Offer("a", MakeTweet(1), 0).accepted);
  ASSERT_FALSE(admission.Offer("a", MakeTweet(2), 0).accepted);
  ASSERT_TRUE(admission.Offer("b", MakeTweet(3), 0).accepted);
  admission.DrainInto(8, nullptr);

  const auto stats = admission.ClientStats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].first, "a");
  EXPECT_EQ(stats[0].second.offered, 2u);
  EXPECT_EQ(stats[0].second.accepted, 1u);
  EXPECT_EQ(stats[0].second.throttled, 1u);
  EXPECT_EQ(stats[0].second.drained, 1u);
  EXPECT_EQ(stats[1].first, "b");
  EXPECT_EQ(stats[1].second.accepted, 1u);
}

}  // namespace
}  // namespace net
}  // namespace emd
