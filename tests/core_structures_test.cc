// Tests for the Global EMD data structures: BIO codec, CTrie, the candidate
// mention extractor, the syntactic embedder, TweetBase/CandidateBase, and
// mention-level metrics. Includes parameterized property sweeps.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/candidate_base.h"
#include "core/ctrie.h"
#include "core/mention_extractor.h"
#include "core/syntactic_embedder.h"
#include "core/tweet_base.h"
#include "text/bio.h"
#include "eval/metrics.h"
#include "text/tweet_tokenizer.h"
#include "util/rng.h"

// Global allocation counter: CTrieTest.StepIsAllocationFreeInSteadyState
// asserts the scan hot path performs zero heap allocations once warm.
// GCC cannot see that the replacement operator new/delete below are a
// matched malloc/free pair and warns at every inlined delete site.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
std::atomic<long> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace emd {
namespace {

std::vector<Token> Toks(const std::string& text) {
  return TweetTokenizer().Tokenize(text);
}

// ------------------------------------------------------------------- BIO

TEST(BioTest, EncodeDecodeBasic) {
  std::vector<TokenSpan> spans = {{1, 3}, {4, 5}};
  auto labels = SpansToBio(spans, 6);
  EXPECT_EQ(labels, (std::vector<int>{kO, kB, kI, kO, kB, kO}));
  EXPECT_EQ(BioToSpans(labels), spans);
}

TEST(BioTest, AdjacentSpansStaySeparate) {
  std::vector<TokenSpan> spans = {{0, 2}, {2, 3}};
  auto labels = SpansToBio(spans, 3);
  EXPECT_EQ(labels, (std::vector<int>{kB, kI, kB}));
  EXPECT_EQ(BioToSpans(labels), spans);
}

TEST(BioTest, DanglingInsideOpensSpan) {
  EXPECT_EQ(BioToSpans({kO, kI, kI, kO}), (std::vector<TokenSpan>{{1, 3}}));
}

TEST(BioTest, OverlappingSpansFirstWins) {
  std::vector<TokenSpan> spans = {{0, 3}, {2, 4}};
  auto labels = SpansToBio(spans, 4);
  EXPECT_EQ(BioToSpans(labels), (std::vector<TokenSpan>{{0, 3}}));
}

class BioRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BioRoundTripTest, RandomNonOverlappingSpansRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const size_t n = 1 + rng.NextU64(20);
    std::vector<TokenSpan> spans;
    size_t pos = 0;
    while (pos < n) {
      if (rng.NextBernoulli(0.4)) {
        size_t len = 1 + rng.NextU64(3);
        len = std::min(len, n - pos);
        spans.push_back({pos, pos + len});
        pos += len;
        ++pos;  // gap so adjacent spans cannot merge ambiguity
      } else {
        ++pos;
      }
    }
    EXPECT_EQ(BioToSpans(SpansToBio(spans, n)), spans);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BioRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------------------- CTrie

TEST(CTrieTest, InsertFindCaseInsensitive) {
  CTrie trie;
  const int id = trie.Insert({"Andy", "Beshear"});
  EXPECT_EQ(trie.Find({"andy", "beshear"}), id);
  EXPECT_EQ(trie.Find({"ANDY", "BESHEAR"}), id);
  EXPECT_EQ(trie.Find({"andy"}), CTrie::kNoCandidate);
  EXPECT_EQ(trie.CandidateKey(id), "andy beshear");
  EXPECT_EQ(trie.CandidateLength(id), 2);
}

TEST(CTrieTest, ReinsertReturnsSameId) {
  CTrie trie;
  const int a = trie.Insert({"coronavirus"});
  const int b = trie.Insert({"CORONAVIRUS"});
  EXPECT_EQ(a, b);
  EXPECT_EQ(trie.num_candidates(), 1);
}

TEST(CTrieTest, PrefixCandidatesCoexist) {
  CTrie trie;
  const int shorter = trie.Insert({"andy"});
  const int longer = trie.Insert({"andy", "beshear"});
  EXPECT_NE(shorter, longer);
  EXPECT_EQ(trie.Find({"andy"}), shorter);
  EXPECT_EQ(trie.Find({"andy", "beshear"}), longer);
  EXPECT_EQ(trie.max_candidate_length(), 2);
}

TEST(CTrieTest, StepTraversal) {
  CTrie trie;
  trie.Insert({"new", "york", "city"});
  int node = trie.root();
  node = trie.Step(node, "New");
  ASSERT_NE(node, CTrie::kNoNode);
  EXPECT_EQ(trie.CandidateAt(node), CTrie::kNoCandidate);
  node = trie.Step(node, "YORK");
  ASSERT_NE(node, CTrie::kNoNode);
  node = trie.Step(node, "city");
  ASSERT_NE(node, CTrie::kNoNode);
  EXPECT_NE(trie.CandidateAt(node), CTrie::kNoCandidate);
  EXPECT_EQ(trie.Step(trie.root(), "boston"), CTrie::kNoNode);
}

TEST(CTrieTest, StepIsAllocationFreeInSteadyState) {
  CTrie trie;
  // Long, mixed-case tokens push past small-string optimization so a naive
  // fold-into-temporary would be forced to allocate.
  trie.Insert({"supercalifragilistic", "expialidocious", "entity"});
  trie.Insert({"new", "york", "city"});

  const std::vector<std::string> scan = {
      "SuperCaliFragilistic", "EXPIALIDOCIOUS", "Entity",
      "New",                  "YORK",           "city",
      "unrelated-token",      "ANOTHER-Unrelated-Long-Token"};

  // Warm the fold scratch to its steady-state capacity.
  std::string fold_scratch;
  for (const std::string& tok : scan) {
    (void)trie.Step(trie.root(), tok, &fold_scratch);
  }

  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 100; ++round) {
    int node = trie.root();
    for (const std::string& tok : scan) {
      node = trie.Step(node, tok, &fold_scratch);
      if (node == CTrie::kNoNode) node = trie.root();
    }
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "CTrie::Step allocated on the steady-state scan path";
}

class CTriePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CTriePropertyTest, EveryInsertedCandidateIsFindable) {
  Rng rng(GetParam());
  CTrie trie;
  std::vector<std::pair<std::vector<std::string>, int>> inserted;
  const std::vector<std::string> words = {"alpha", "beta", "gamma", "delta", "eps"};
  for (int i = 0; i < 60; ++i) {
    std::vector<std::string> phrase;
    const int len = rng.NextInt(1, 3);
    for (int k = 0; k < len; ++k) phrase.push_back(words[rng.NextU64(words.size())]);
    inserted.emplace_back(phrase, trie.Insert(phrase));
  }
  for (const auto& [phrase, id] : inserted) {
    EXPECT_EQ(trie.Find(phrase), id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CTriePropertyTest, ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------- MentionExtractor

TEST(MentionExtractorTest, FindsAllCaseVariants) {
  CTrie trie;
  const int id = trie.Insert({"coronavirus"});
  MentionExtractor ex(&trie);
  auto tokens = Toks("the Coronavirus and CORONAVIRUS and coronavirus spread");
  auto mentions = ex.Extract(tokens);
  ASSERT_EQ(mentions.size(), 3u);
  for (const auto& m : mentions) EXPECT_EQ(m.candidate_id, id);
}

TEST(MentionExtractorTest, LongestMatchWins) {
  CTrie trie;
  trie.Insert({"andy"});
  const int full = trie.Insert({"andy", "beshear"});
  MentionExtractor ex(&trie);
  auto mentions = ex.Extract(Toks("governor Andy Beshear spoke"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].candidate_id, full);
  EXPECT_EQ(mentions[0].span, (TokenSpan{1, 3}));
}

TEST(MentionExtractorTest, PartialExtractionCorrection) {
  // Local EMD found only "Andy" here but the full string was registered from
  // another tweet: the extractor returns the full mention (§V-A example).
  CTrie trie;
  trie.Insert({"Andy", "Beshear"});
  MentionExtractor ex(&trie);
  auto mentions = ex.Extract(Toks("andy beshear says schools stay closed"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].span, (TokenSpan{0, 2}));
}

TEST(MentionExtractorTest, FallsBackToShorterCandidateOnLongerMiss) {
  CTrie trie;
  const int shorter = trie.Insert({"andy"});
  trie.Insert({"andy", "beshear"});
  MentionExtractor ex(&trie);
  auto mentions = ex.Extract(Toks("Andy spoke today"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].candidate_id, shorter);
}

TEST(MentionExtractorTest, NonOverlappingLeftToRight) {
  CTrie trie;
  trie.Insert({"us"});
  trie.Insert({"us", "open"});
  MentionExtractor ex(&trie);
  auto mentions = ex.Extract(Toks("US Open starts as US fans arrive"));
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].span, (TokenSpan{0, 2}));  // "US Open"
  EXPECT_EQ(mentions[1].span, (TokenSpan{4, 5}));  // "US"
}

TEST(MentionExtractorTest, EmptyTrieFindsNothing) {
  CTrie trie;
  MentionExtractor ex(&trie);
  EXPECT_TRUE(ex.Extract(Toks("nothing to see here")).empty());
}

TEST(MentionExtractorTest, MidWindowRestartFindsLaterCandidate) {
  // A failed long window must not swallow a candidate starting inside it.
  CTrie trie;
  trie.Insert({"new", "york"});
  trie.Insert({"york", "times"});
  MentionExtractor ex(&trie);
  auto mentions = ex.Extract(Toks("the new york times building"));
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].span, (TokenSpan{1, 3}));  // longest from leftmost start
}

// --------------------------------------------------------- SyntacticEmbedder

TEST(SyntacticEmbedderTest, ProperCapitalization) {
  auto tokens = Toks("today Andy Beshear warned everyone");
  EXPECT_EQ(ClassifyMentionSyntax(tokens, {1, 3}),
            SyntacticCategory::kProperCapitalization);
}

TEST(SyntacticEmbedderTest, StartOfSentenceCap) {
  auto tokens = Toks("Beshear says stay home");
  EXPECT_EQ(ClassifyMentionSyntax(tokens, {0, 1}),
            SyntacticCategory::kStartOfSentenceCap);
}

TEST(SyntacticEmbedderTest, SubstringCapitalization) {
  auto tokens = Toks("meeting with Andy beshear today");
  EXPECT_EQ(ClassifyMentionSyntax(tokens, {2, 4}),
            SyntacticCategory::kSubstringCapitalization);
}

TEST(SyntacticEmbedderTest, FullCapitalization) {
  auto tokens = Toks("cases rise in the US again");
  EXPECT_EQ(ClassifyMentionSyntax(tokens, {4, 5}),
            SyntacticCategory::kFullCapitalization);
}

TEST(SyntacticEmbedderTest, NoCapitalization) {
  auto tokens = Toks("the coronavirus keeps Spreading fast");
  EXPECT_EQ(ClassifyMentionSyntax(tokens, {1, 2}),
            SyntacticCategory::kNoCapitalization);
}

TEST(SyntacticEmbedderTest, NonDiscriminativeAllCapsSentence) {
  auto tokens = Toks("WE JUST PASSED ITALY WITH CASES");
  EXPECT_EQ(ClassifyMentionSyntax(tokens, {3, 4}),
            SyntacticCategory::kNonDiscriminative);
}

TEST(SyntacticEmbedderTest, NonDiscriminativeAllLowerSentence) {
  auto tokens = Toks("we just passed italy with cases");
  EXPECT_EQ(ClassifyMentionSyntax(tokens, {3, 4}),
            SyntacticCategory::kNonDiscriminative);
}

TEST(SyntacticEmbedderTest, OneHotEmbedding) {
  auto tokens = Toks("today Andy Beshear warned everyone");
  Mat e = SyntacticEmbedding(tokens, {1, 3});
  EXPECT_EQ(e.cols(), kNumSyntacticCategories);
  float sum = 0;
  for (int j = 0; j < e.cols(); ++j) sum += e(0, j);
  EXPECT_FLOAT_EQ(sum, 1.f);
  EXPECT_FLOAT_EQ(e(0, 0), 1.f);
}

// --------------------------------------------------------- Candidate/Tweet base

TEST(CandidateBaseTest, IncrementalPoolingEqualsBatchMean) {
  CandidateBase base;
  base.GetOrCreate(0, "test", 1);
  Rng rng(3);
  Mat sum(1, 4);
  const int n = 7;
  for (int i = 0; i < n; ++i) {
    Mat e(1, 4);
    e.InitGaussian(&rng, 1.f);
    sum.Add(e);
    base.AddMention(0, {}, e);
  }
  Mat mean = sum;
  mean.Scale(1.f / n);
  Mat global = base.at(0).GlobalEmbedding();
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(global(0, j), mean(0, j), 1e-5);
  EXPECT_EQ(base.at(0).mentions.size(), 7u);
}

TEST(CandidateBaseTest, RetainMentionEmbeddings) {
  CandidateBase base;
  base.set_retain_mention_embeddings(true);
  base.GetOrCreate(0, "x", 1);
  base.AddMention(0, {}, Mat(1, 2, {1, 2}));
  base.AddMention(0, {}, Mat(1, 2, {3, 4}));
  ASSERT_EQ(base.at(0).mention_embeddings.size(), 2u);
  EXPECT_FLOAT_EQ(base.at(0).mention_embeddings[1](0, 1), 4.f);
}

TEST(TweetBaseTest, AddAndReleaseEmbeddings) {
  TweetBase base;
  TweetRecord rec;
  rec.token_embeddings = Mat(3, 4);
  const size_t idx = base.Add(std::move(rec));
  EXPECT_FALSE(base.at(idx).token_embeddings.empty());
  base.ReleaseEmbeddings(0, base.size());
  EXPECT_TRUE(base.at(idx).token_embeddings.empty());
}

// ------------------------------------------------------------------ Metrics

TEST(MetricsTest, PerfectPrediction) {
  Dataset d;
  AnnotatedTweet t;
  t.tokens = Toks("Andy Beshear spoke in Kentucky");
  t.gold = {{{0, 2}, 1}, {{4, 5}, 2}};
  d.tweets.push_back(t);
  PrfScores s = EvaluateMentions(d, {{{0, 2}, {4, 5}}});
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  EXPECT_EQ(s.tp, 2);
}

TEST(MetricsTest, PartialOverlapIsNotAMatch) {
  Dataset d;
  AnnotatedTweet t;
  t.tokens = Toks("Andy Beshear spoke");
  t.gold = {{{0, 2}, 1}};
  d.tweets.push_back(t);
  PrfScores s = EvaluateMentions(d, {{{0, 1}}});  // only "Andy"
  EXPECT_EQ(s.tp, 0);
  EXPECT_EQ(s.fp, 1);
  EXPECT_EQ(s.fn, 1);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(MetricsTest, HandComputedPrf) {
  Dataset d;
  for (int i = 0; i < 2; ++i) {
    AnnotatedTweet t;
    t.tokens = Toks("a b c d e");
    t.gold = {{{0, 1}, 1}, {{2, 3}, 2}};
    d.tweets.push_back(t);
  }
  // Tweet 0: predict one correct + one wrong; tweet 1: nothing.
  PrfScores s = EvaluateMentions(d, {{{0, 1}, {4, 5}}, {}});
  EXPECT_EQ(s.tp, 1);
  EXPECT_EQ(s.fp, 1);
  EXPECT_EQ(s.fn, 3);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.25);
}

TEST(MetricsTest, UniqueSurfaceDeduplicates) {
  Dataset d;
  for (int i = 0; i < 3; ++i) {
    AnnotatedTweet t;
    t.tokens = Toks("Coronavirus spreads fast");
    t.gold = {{{0, 1}, 1}};
    d.tweets.push_back(t);
  }
  PrfScores s =
      EvaluateUniqueSurfaces(d, {{{0, 1}}, {}, {}});  // found once out of 3
  EXPECT_DOUBLE_EQ(s.f1, 1.0) << "unique-surface counts the form once";
}

TEST(MetricsTest, EmptyPredictions) {
  Dataset d;
  AnnotatedTweet t;
  t.tokens = Toks("x y");
  t.gold = {{{0, 1}, 1}};
  d.tweets.push_back(t);
  PrfScores s = EvaluateMentions(d, {{}});
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

}  // namespace
}  // namespace emd
