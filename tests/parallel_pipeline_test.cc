// Parallel batch engine tests: ThreadPool correctness under contention, and
// the determinism contract — a Globalizer running N worker threads must
// produce bit-identical output (mentions, candidate records, pooled global
// embeddings) to the serial pipeline.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "core/globalizer.h"
#include "core/phrase_embedder.h"
#include "mock_local_system.h"
#include "text/tweet_tokenizer.h"
#include "util/thread_pool.h"

namespace emd {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int /*slot*/, size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForSlotsStayInRange) {
  ThreadPool pool(3);
  std::atomic<bool> ok{true};
  pool.ParallelFor(200, [&](int slot, size_t /*i*/) {
    if (slot < 0 || slot >= 3) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&](int /*slot*/, size_t i) {
    sum += static_cast<int>(i) + 1;
  });
  EXPECT_EQ(sum.load(), 6);
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsANoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](int, size_t) { FAIL() << "must not be invoked"; });
}

TEST(ThreadPoolTest, SameSlotNeverOverlaps) {
  // The slot contract lets callers bind non-thread-safe resources per slot:
  // two invocations with the same slot must never run concurrently.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> in_flight(4);
  std::atomic<bool> overlapped{false};
  pool.ParallelFor(500, [&](int slot, size_t /*i*/) {
    if (in_flight[slot].fetch_add(1) != 0) overlapped = true;
    std::this_thread::yield();
    in_flight[slot].fetch_sub(1);
  });
  EXPECT_FALSE(overlapped.load());
}

TEST(ThreadPoolTest, SubmitRunsDetachedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&] { ++ran; });
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ConcurrentParallelForFromTwoThreads) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  auto work = [&] {
    for (int round = 0; round < 20; ++round) {
      pool.ParallelFor(64, [&](int /*slot*/, size_t /*i*/) { ++total; });
    }
  };
  std::thread a(work), b(work);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 20 * 64);
}

TEST(ThreadPoolTest, StartStopStress) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(1 + round % 4);
    std::atomic<int> n{0};
    pool.ParallelFor(17, [&](int, size_t) { ++n; });
    EXPECT_EQ(n.load(), 17);
  }
}

TEST(ThreadPoolTest, ParallelForOrSerialWithoutPool) {
  std::vector<int> hits(10, 0);
  ParallelForOrSerial(nullptr, hits.size(), [&](int slot, size_t i) {
    EXPECT_EQ(slot, 0);
    ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

// ---------------------------------------------------------------------------
// Parallel vs serial Globalizer determinism
// ---------------------------------------------------------------------------

AnnotatedTweet MakeTweet(long id, const std::string& text) {
  AnnotatedTweet t;
  t.tweet_id = id;
  t.text = text;
  t.tokens = TweetTokenizer().Tokenize(text);
  return t;
}

// A stream exercising the Fig. 1 inconsistency plus multi-token candidates,
// partial extractions, and repeated mentions across batches.
Dataset ParallelStream() {
  Dataset d;
  d.name = "parallel";
  d.streaming = true;
  const std::vector<std::string> texts = {
      "the Coronavirus keeps spreading fast",
      "worried about coronavirus cases today",
      "governor Andy Beshear spoke at noon",
      "CORONAVIRUS cases rising again now",
      "andy beshear closed the schools",
      "people discuss Coronavirus and Andy Beshear",
      "new variant of the coronavirus detected",
      "Beshear thanked the nurses yesterday",
      "the coronavirus response was slow",
      "Andy Beshear and the Coronavirus briefing",
      "lockdown easing as coronavirus recedes",
      "press asked Andy Beshear about schools",
  };
  for (size_t i = 0; i < texts.size(); ++i) {
    d.tweets.push_back(MakeTweet(static_cast<long>(i + 1), texts[i]));
  }
  return d;
}

std::vector<MockLocalSystem::Rule> StreamRules() {
  return {
      {.phrase = {"coronavirus"}, .require_capitalized = true},
      {.phrase = {"andy", "beshear"}, .require_capitalized = true},
      {.phrase = {"andy", "beshear"}, .partial = true},
      {.phrase = {"beshear"}, .require_capitalized = true},
  };
}

struct RunResult {
  GlobalizerOutput output;
  // Flattened candidate state for bit-exact comparison.
  std::vector<std::string> keys;
  std::vector<int> embedding_counts;
  std::vector<std::vector<float>> embedding_sums;
  int local_lanes = 0;
};

// Runs the stream through a Globalizer in fixed-size batches and captures
// everything the parallel engine could possibly perturb.
RunResult RunStream(Globalizer* g, const Dataset& d, size_t batch_size) {
  int lanes = 1;
  for (size_t begin = 0; begin < d.tweets.size(); begin += batch_size) {
    const size_t end = std::min(d.tweets.size(), begin + batch_size);
    EXPECT_TRUE(g->ProcessBatch(std::span<const AnnotatedTweet>(
                                    d.tweets.data() + begin, end - begin))
                    .ok());
    lanes = std::max(lanes, g->last_local_lanes());
  }
  RunResult r;
  r.output = g->Finalize().value();
  r.local_lanes = lanes;
  const CandidateBase& cb = g->candidate_base();
  for (size_t id = 0; id < cb.size(); ++id) {
    const CandidateRecord& rec = cb.at(static_cast<int>(id));
    r.keys.push_back(rec.key);
    r.embedding_counts.push_back(rec.embedding_count);
    const Mat& sum = rec.embedding_sum;
    r.embedding_sums.emplace_back(sum.data(), sum.data() + sum.rows() * sum.cols());
  }
  return r;
}

void ExpectIdentical(const RunResult& serial, const RunResult& parallel) {
  ASSERT_EQ(serial.output.mentions.size(), parallel.output.mentions.size());
  for (size_t i = 0; i < serial.output.mentions.size(); ++i) {
    EXPECT_EQ(serial.output.mentions[i], parallel.output.mentions[i])
        << "tweet " << i;
  }
  EXPECT_EQ(serial.output.num_candidates, parallel.output.num_candidates);
  EXPECT_EQ(serial.output.num_quarantined, parallel.output.num_quarantined);
  EXPECT_EQ(serial.output.num_degraded, parallel.output.num_degraded);
  ASSERT_EQ(serial.keys, parallel.keys);
  ASSERT_EQ(serial.embedding_counts, parallel.embedding_counts);
  ASSERT_EQ(serial.embedding_sums.size(), parallel.embedding_sums.size());
  for (size_t i = 0; i < serial.embedding_sums.size(); ++i) {
    const auto& a = serial.embedding_sums[i];
    const auto& b = parallel.embedding_sums[i];
    ASSERT_EQ(a.size(), b.size()) << "candidate " << i;
    // Bit-for-bit, not approximate: the parallel merge must replicate the
    // serial pooling order exactly.
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
        << "candidate " << i << " (" << serial.keys[i] << ")";
  }
}

TEST(ParallelPipelineTest, DeepSystemParallelMatchesSerialBitForBit) {
  const Dataset d = ParallelStream();
  constexpr int kDim = 16;

  MockLocalSystem serial_mock(StreamRules(), kDim);
  PhraseEmbedder pe(kDim, 8);
  GlobalizerOptions serial_opt;
  serial_opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer serial(&serial_mock, &pe, nullptr, serial_opt);
  RunResult sr = RunStream(&serial, d, /*batch_size=*/4);

  MockLocalSystem parallel_mock(StreamRules(), kDim);
  GlobalizerOptions parallel_opt = serial_opt;
  parallel_opt.num_threads = 4;
  Globalizer parallel(&parallel_mock, &pe, nullptr, parallel_opt);
  RunResult pr = RunStream(&parallel, d, /*batch_size=*/4);

  EXPECT_GT(pr.local_lanes, 1) << "parallel run should have fanned out";
  ExpectIdentical(sr, pr);
  EXPECT_EQ(serial_mock.calls(), parallel_mock.calls());
}

TEST(ParallelPipelineTest, ShallowSystemParallelMatchesSerial) {
  const Dataset d = ParallelStream();

  MockLocalSystem serial_mock(StreamRules());
  GlobalizerOptions serial_opt;
  serial_opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer serial(&serial_mock, nullptr, nullptr, serial_opt);
  RunResult sr = RunStream(&serial, d, /*batch_size=*/3);

  MockLocalSystem parallel_mock(StreamRules());
  GlobalizerOptions parallel_opt = serial_opt;
  parallel_opt.num_threads = 8;
  Globalizer parallel(&parallel_mock, nullptr, nullptr, parallel_opt);
  RunResult pr = RunStream(&parallel, d, /*batch_size=*/3);

  EXPECT_GT(pr.local_lanes, 1);
  ExpectIdentical(sr, pr);
}

// A mock that declares itself unsafe for concurrent use, to exercise the
// per-worker replica path and the serial-local fallback.
class UnsafeMock : public MockLocalSystem {
 public:
  using MockLocalSystem::MockLocalSystem;
  bool concurrent_safe() const override { return false; }
};

TEST(ParallelPipelineTest, UnsafeSystemWithoutReplicasRunsLocalSeriallyButMatches) {
  const Dataset d = ParallelStream();

  UnsafeMock serial_mock(StreamRules());
  GlobalizerOptions serial_opt;
  serial_opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer serial(&serial_mock, nullptr, nullptr, serial_opt);
  RunResult sr = RunStream(&serial, d, /*batch_size=*/4);

  UnsafeMock parallel_mock(StreamRules());
  GlobalizerOptions parallel_opt = serial_opt;
  parallel_opt.num_threads = 4;
  Globalizer parallel(&parallel_mock, nullptr, nullptr, parallel_opt);
  RunResult pr = RunStream(&parallel, d, /*batch_size=*/4);

  // Local EMD stays on one lane (no replicas, not concurrent-safe); the
  // global re-scan stage still parallelizes. Output must not change.
  EXPECT_EQ(pr.local_lanes, 1);
  ExpectIdentical(sr, pr);
}

TEST(ParallelPipelineTest, UnsafeSystemWithWorkerReplicasFansOutAndMatches) {
  const Dataset d = ParallelStream();
  constexpr int kDim = 12;

  UnsafeMock serial_mock(StreamRules(), kDim);
  PhraseEmbedder pe(kDim, 6);
  GlobalizerOptions serial_opt;
  serial_opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer serial(&serial_mock, &pe, nullptr, serial_opt);
  RunResult sr = RunStream(&serial, d, /*batch_size=*/6);

  // Behaviourally identical replicas (same rules, same dim), one per lane.
  UnsafeMock primary(StreamRules(), kDim);
  UnsafeMock r0(StreamRules(), kDim), r1(StreamRules(), kDim),
      r2(StreamRules(), kDim);
  GlobalizerOptions parallel_opt = serial_opt;
  parallel_opt.num_threads = 3;
  Globalizer parallel(&primary, &pe, nullptr, parallel_opt);
  parallel.set_worker_systems({&r0, &r1, &r2});
  RunResult pr = RunStream(&parallel, d, /*batch_size=*/6);

  EXPECT_EQ(pr.local_lanes, 3);
  ExpectIdentical(sr, pr);
  // Replicas actually carried the load.
  EXPECT_EQ(r0.calls() + r1.calls() + r2.calls(),
            static_cast<int>(d.tweets.size()));
  EXPECT_EQ(primary.calls(), 0);
}

// ---------------------------------------------------------------------------
// Token-batched local stage (forward-pass planner) determinism
// ---------------------------------------------------------------------------

// Like ParallelStream but with an empty tweet and a one-token tweet mixed in,
// so the ragged batch packer sees zero-length and minimal sequences.
Dataset RaggedStream() {
  Dataset d = ParallelStream();
  d.name = "ragged";
  d.tweets.push_back(MakeTweet(100, ""));
  d.tweets.push_back(MakeTweet(101, "Beshear"));
  d.tweets.push_back(MakeTweet(102, "quiet day on the feed"));
  return d;
}

TEST(ParallelPipelineTest, TokenBatchedSerialMatchesPerTweetBitForBit) {
  const Dataset d = RaggedStream();
  constexpr int kDim = 16;
  PhraseEmbedder pe(kDim, 8);

  // Baseline: token batching disabled — the legacy per-tweet local stage and
  // per-mention phrase embedding.
  MockLocalSystem legacy_mock(StreamRules(), kDim);
  GlobalizerOptions legacy_opt;
  legacy_opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  legacy_opt.token_batching = false;
  Globalizer legacy(&legacy_mock, &pe, nullptr, legacy_opt);
  RunResult lr = RunStream(&legacy, d, /*batch_size=*/5);

  // Token-batched: whole batch slots go through ProcessBatched and the fused
  // span-embedding GEMM. Output must be bit-identical.
  MockLocalSystem batched_mock(StreamRules(), kDim);
  batched_mock.set_batch_capable(true);
  GlobalizerOptions batched_opt = legacy_opt;
  batched_opt.token_batching = true;
  Globalizer batched(&batched_mock, &pe, nullptr, batched_opt);
  RunResult br = RunStream(&batched, d, /*batch_size=*/5);

  EXPECT_GT(batched_mock.batched_calls(), 0)
      << "batch-capable system should have taken the planner path";
  ExpectIdentical(lr, br);
  EXPECT_EQ(legacy_mock.calls(), batched_mock.calls());
}

TEST(ParallelPipelineTest, TokenBatchedParallelMatchesSerialBitForBit) {
  const Dataset d = RaggedStream();
  constexpr int kDim = 16;
  PhraseEmbedder pe(kDim, 8);

  MockLocalSystem serial_mock(StreamRules(), kDim);
  GlobalizerOptions serial_opt;
  serial_opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  serial_opt.token_batching = false;
  Globalizer serial(&serial_mock, &pe, nullptr, serial_opt);
  RunResult sr = RunStream(&serial, d, /*batch_size=*/5);

  MockLocalSystem parallel_mock(StreamRules(), kDim);
  parallel_mock.set_batch_capable(true);
  GlobalizerOptions parallel_opt = serial_opt;
  parallel_opt.token_batching = true;
  parallel_opt.num_threads = 4;
  Globalizer parallel(&parallel_mock, &pe, nullptr, parallel_opt);
  RunResult pr = RunStream(&parallel, d, /*batch_size=*/5);

  EXPECT_GT(pr.local_lanes, 1) << "parallel run should have fanned out";
  EXPECT_GT(parallel_mock.batched_calls(), 0);
  ExpectIdentical(sr, pr);
}

TEST(ParallelPipelineTest, TokenBatchedWorkerReplicasFanOutAndMatch) {
  const Dataset d = ParallelStream();
  constexpr int kDim = 12;
  PhraseEmbedder pe(kDim, 6);

  UnsafeMock serial_mock(StreamRules(), kDim);
  GlobalizerOptions serial_opt;
  serial_opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  serial_opt.token_batching = false;
  Globalizer serial(&serial_mock, &pe, nullptr, serial_opt);
  RunResult sr = RunStream(&serial, d, /*batch_size=*/6);

  // Batch-capable replicas: each worker lane drives one contiguous chunk of
  // the batch slot through its own replica's ProcessBatched.
  UnsafeMock primary(StreamRules(), kDim);
  UnsafeMock r0(StreamRules(), kDim), r1(StreamRules(), kDim),
      r2(StreamRules(), kDim);
  for (UnsafeMock* m : {&primary, &r0, &r1, &r2}) m->set_batch_capable(true);
  GlobalizerOptions parallel_opt = serial_opt;
  parallel_opt.token_batching = true;
  parallel_opt.num_threads = 3;
  Globalizer parallel(&primary, &pe, nullptr, parallel_opt);
  parallel.set_worker_systems({&r0, &r1, &r2});
  RunResult pr = RunStream(&parallel, d, /*batch_size=*/6);

  EXPECT_EQ(pr.local_lanes, 3);
  ExpectIdentical(sr, pr);
  EXPECT_GT(r0.batched_calls() + r1.batched_calls() + r2.batched_calls(), 0);
  EXPECT_EQ(r0.calls() + r1.calls() + r2.calls(),
            static_cast<int>(d.tweets.size()));
  EXPECT_EQ(primary.calls(), 0);
}

TEST(ParallelPipelineTest, SingleTweetBatchesStaySerial) {
  MockLocalSystem mock(StreamRules());
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.num_threads = 4;
  Globalizer g(&mock, nullptr, nullptr, opt);
  const Dataset d = ParallelStream();
  RunResult r = RunStream(&g, d, /*batch_size=*/1);
  EXPECT_EQ(r.local_lanes, 1);
  EXPECT_EQ(r.output.num_candidates > 0, true);
}

}  // namespace
}  // namespace emd
