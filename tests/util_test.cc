#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/file_io.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace emd {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k: ", 42);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k: 42");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k: 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() -> Status { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    EMD_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 5;
  };
  auto use = [&](bool fail) -> Result<int> {
    int v = 0;
    EMD_ASSIGN_OR_RETURN(v, make(fail));
    return v + 1;
  };
  EXPECT_EQ(*use(false), 6);
  EXPECT_TRUE(use(true).status().IsInternal());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedDrawRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextU64(17), 17u);
    int v = rng.NextInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(10);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, WeightedSamplingFollowsWeights) {
  Rng rng(12);
  std::vector<double> w = {1, 0, 3};
  int counts[3] = {};
  for (int i = 0; i < 8000; ++i) ++counts[rng.NextWeighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ZipfIsSkewedAndBounded) {
  Rng rng(13);
  int counts[10] = {};
  for (int i = 0; i < 20000; ++i) {
    size_t k = rng.NextZipf(10, 1.2);
    ASSERT_LT(k, 10u);
    ++counts[k];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(77), b(77);
  Rng ca = a.Split();
  Rng cb = b.Split();
  EXPECT_EQ(ca.NextU64(), cb.NextU64());
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(StringUtilTest, CaseConversions) {
  EXPECT_EQ(ToLowerAscii("AbC1!"), "abc1!");
  EXPECT_EQ(ToUpperAscii("AbC1!"), "ABC1!");
  EXPECT_EQ(Capitalize("cORONAVIRUS"), "Coronavirus");
  EXPECT_TRUE(EqualsIgnoreCase("Andy", "aNDY"));
  EXPECT_FALSE(EqualsIgnoreCase("Andy", "Andi"));
}

TEST(StringUtilTest, CasePredicates) {
  EXPECT_TRUE(IsAllUpper("US"));
  EXPECT_FALSE(IsAllUpper("Us"));
  EXPECT_FALSE(IsAllUpper("12"));  // no alpha
  EXPECT_TRUE(IsAllLower("virus"));
  EXPECT_FALSE(IsAllLower("Virus"));
  EXPECT_TRUE(IsInitialCap("Beshear"));
  EXPECT_FALSE(IsInitialCap("BEshear"));
  EXPECT_TRUE(HasDigit("covid19"));
  EXPECT_FALSE(HasDigit("covid"));
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(Split("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitKeepEmpty("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Join({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(Strip("  hi\n"), "hi");
}

TEST(StringUtilTest, WordShape) {
  EXPECT_EQ(WordShape("McDonald"), "XxXx");
  EXPECT_EQ(WordShape("COVID19"), "Xd");
  EXPECT_EQ(WordShape("covid-19", false), "xxxxxodd");
}

TEST(FileIoTest, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "emd_io_test.txt").string();
  ASSERT_TRUE(WriteStringToFile(path, "line1\nline2\n").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "line1\nline2\n");
  auto lines = ReadLines(path);
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(lines->size(), 2u);
  EXPECT_EQ((*lines)[1], "line2");
  std::filesystem::remove(path);
}

TEST(FileIoTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadFileToString("/nonexistent/emd/file").status().IsIoError());
  EXPECT_FALSE(FileExists("/nonexistent/emd/file"));
}

TEST(Crc32Test, KnownAnswers) {
  // IEEE CRC-32 check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32(std::string_view("abc")), Crc32("abc", 3));
}

TEST(Crc32Test, SeedChainsIncrementally) {
  const std::string data = "the quick brown fox";
  const uint32_t whole = Crc32(data.data(), data.size());
  const uint32_t first = Crc32(data.data(), 7);
  const uint32_t chained = Crc32(data.data() + 7, data.size() - 7, first);
  EXPECT_EQ(chained, whole);
  EXPECT_NE(Crc32(data.data(), data.size(), 1), whole) << "seed matters";
}

TEST(BinaryIoTest, RoundTripsScalarsAndStrings) {
  std::string buf;
  binio::AppendU8(&buf, 7);
  binio::AppendU32(&buf, 0xDEADBEEFu);
  binio::AppendI64(&buf, -42);
  binio::AppendF32(&buf, 1.5f);
  binio::AppendString(&buf, "hello");
  const float floats[3] = {1.f, -2.f, 3.f};
  binio::AppendFloats(&buf, floats, 3);

  binio::Reader r(buf, "test buffer");
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  int64_t i64 = 0;
  float f32 = 0;
  std::string s;
  float out[3] = {};
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadF32(&f32).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadFloats(out, 3).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(out[1], -2.f);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryIoTest, ExhaustedReaderIsCorruption) {
  std::string buf;
  binio::AppendU32(&buf, 3);  // string length prefix promising 3 bytes...
  buf += "ab";                // ...but only 2 present
  binio::Reader r(buf, "short buffer");
  std::string s;
  const Status st = r.ReadString(&s);
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("short buffer"), std::string::npos);
  uint64_t v = 0;
  EXPECT_TRUE(binio::Reader("abc", "x").ReadU64(&v).IsCorruption());
}

TEST(FileIoTest, WriteFileAtomicPublishesAndReplaces) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "emd_atomic_util.txt").string();
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "first");
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "second");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(TimerTest, PhaseAccumulation) {
  PhaseTimer timer;
  timer.Add("a", 1.5);
  timer.Add("a", 0.5);
  timer.Add("b", 1.0);
  EXPECT_DOUBLE_EQ(timer.Total("a"), 2.0);
  EXPECT_DOUBLE_EQ(timer.Total("b"), 1.0);
  EXPECT_DOUBLE_EQ(timer.Total("missing"), 0.0);
}

TEST(TimerTest, ScopedPhaseRecords) {
  PhaseTimer timer;
  {
    ScopedPhase phase(&timer, "x");
  }
  EXPECT_GE(timer.Total("x"), 0.0);
}

}  // namespace
}  // namespace emd
