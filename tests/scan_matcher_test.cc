// Interned-symbol candidate matcher tests (DESIGN §12, ctest label `scan`):
// SymbolTable refcount/recycle semantics, CTrie symbol edges agreeing with
// the string-keyed edges, bit-identity between the legacy lockstep scan and
// the interned first-token-dispatch scan — on fixed corpora, under a
// randomized fuzz with insert/evict/rebuild churn and non-ASCII tokens, and
// through the Globalizer across shard counts {1,4,13} x thread counts {1,4}
// — plus eviction unregistering dispatch/symbol state, checkpoint restore
// rebuilding the symbol table, the EMD_MATCHER escape hatch, and a
// zero-steady-state-allocation guarantee for both scan loops.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <vector>

// GCC cannot see that the replacement operator new/delete below are a
// matched malloc/free pair and warns at every inlined delete site.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
std::atomic<long> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include "core/ctrie.h"
#include "core/global_state.h"
#include "core/globalizer.h"
#include "mock_local_system.h"
#include "stream/datasets.h"
#include "text/symbol_table.h"
#include "text/tweet_tokenizer.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace emd {
namespace {

using MK = ShardedGlobalState::MatcherKind;

std::vector<Token> Toks(const std::string& text) {
  std::vector<Token> out;
  for (const std::string& w : Split(text)) {
    Token t;
    t.text = w;
    out.push_back(t);
  }
  return out;
}

void ExpectSameMentions(const std::vector<ExtractedMention>& expected,
                        const std::vector<ExtractedMention>& actual,
                        const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(expected[i].span == actual[i].span)
        << what << " mention " << i << ": [" << expected[i].span.begin << ","
        << expected[i].span.end << ") vs [" << actual[i].span.begin << ","
        << actual[i].span.end << ")";
    EXPECT_EQ(expected[i].candidate_id, actual[i].candidate_id)
        << what << " mention " << i;
  }
}

// ----------------------------------------------------------- SymbolTable --

TEST(SymbolTableTest, AcquireLookupReleaseRecyclesIds) {
  SymbolTable syms;
  const int32_t a = syms.Acquire("andy");
  const int32_t b = syms.Acquire("beshear");
  EXPECT_NE(a, b);
  EXPECT_EQ(syms.Acquire("andy"), a);  // second reference, same id
  EXPECT_EQ(syms.Lookup("andy"), a);
  EXPECT_EQ(syms.Lookup("missing"), SymbolTable::kNoSymbol);
  EXPECT_EQ(syms.text(a), "andy");
  EXPECT_EQ(syms.ref_count(a), 2u);
  EXPECT_EQ(syms.num_live(), 2);

  syms.Release(a);
  EXPECT_EQ(syms.Lookup("andy"), a);  // one reference still held
  syms.Release(a);
  EXPECT_EQ(syms.Lookup("andy"), SymbolTable::kNoSymbol);
  EXPECT_EQ(syms.num_live(), 1);

  // The dead id slot is recycled for the next distinct token; the id space
  // stays dense under churn.
  const int32_t c = syms.Acquire("kentucky");
  EXPECT_EQ(c, a);
  EXPECT_EQ(syms.text(c), "kentucky");
  EXPECT_EQ(syms.capacity(), 2);
}

// --------------------------------------------------- CTrie symbol edges --

TEST(CTrieSymbolTest, StepSymbolAndStepFoldedAgreeWithStep) {
  SymbolTable syms;
  CTrie trie;
  trie.BindSymbolTable(&syms);
  trie.Insert({"new", "york"});
  trie.Insert({"new", "york", "times"});
  trie.Insert({"boston"});

  const int n1 = trie.Step(trie.root(), "New");
  ASSERT_NE(n1, CTrie::kNoNode);
  EXPECT_EQ(trie.StepFolded(trie.root(), "new"), n1);
  EXPECT_EQ(trie.StepSymbol(trie.root(), syms.Lookup("new")), n1);
  EXPECT_EQ(trie.RootChildForSymbol(syms.Lookup("new")), n1);

  const int n2 = trie.Step(n1, "YORK");
  ASSERT_NE(n2, CTrie::kNoNode);
  EXPECT_EQ(trie.StepSymbol(n1, syms.Lookup("york")), n2);
  EXPECT_EQ(trie.StepSymbol(n2, syms.Lookup("times")),
            trie.Step(n2, "times"));

  // Unknown token: Lookup yields kNoSymbol, which matches no edge.
  EXPECT_EQ(syms.Lookup("chicago"), SymbolTable::kNoSymbol);
  EXPECT_EQ(trie.StepSymbol(trie.root(), SymbolTable::kNoSymbol),
            CTrie::kNoNode);
  // A symbol that exists but labels no edge at this node.
  EXPECT_EQ(trie.StepSymbol(n1, syms.Lookup("boston")), CTrie::kNoNode);
}

TEST(CTrieSymbolTest, PruneReleasesSymbolsWithTheirEdges) {
  SymbolTable syms;
  CTrie trie;
  trie.BindSymbolTable(&syms);
  const int ny = trie.Insert({"new", "york"});
  const int nyt = trie.Insert({"new", "york", "times"});
  // Edges: new, york, times — "new"/"york" shared by both candidates.
  EXPECT_EQ(syms.num_live(), 3);

  trie.Prune(nyt);  // only the "times" suffix edge disappears
  EXPECT_EQ(syms.Lookup("times"), SymbolTable::kNoSymbol);
  EXPECT_NE(syms.Lookup("york"), SymbolTable::kNoSymbol);
  EXPECT_EQ(syms.num_live(), 2);

  trie.Prune(ny);
  EXPECT_EQ(syms.Lookup("new"), SymbolTable::kNoSymbol);
  EXPECT_EQ(syms.num_live(), 0);
}

// -------------------------------------------- fixed-corpus bit-identity --

TEST(ScanMatcherTest, FixedCorpusIdenticalAcrossMatchersAndShardCounts) {
  const std::vector<std::vector<std::string>> phrases = {
      {"andy", "beshear"}, {"andy"},          {"kentucky"},
      {"new", "york"},     {"new", "york", "times"},
      {"café"},            {"zürich", "airport"}};
  const std::vector<std::string> corpus = {
      "Andy Beshear spoke in KENTUCKY today",
      "the New York Times covered andy",
      "new york new york times andy beshear",
      "Café prices in Zürich Airport rising",
      "nothing matches in this tweet at all",
      "andy",
      "",
  };
  ShardedGlobalState reference(1, MK::kLegacy);
  for (const auto& p : phrases) reference.Insert(p);
  for (int shards : {1, 4, 13}) {
    for (MK kind : {MK::kLegacy, MK::kInterned}) {
      ShardedGlobalState state(shards, kind);
      for (const auto& p : phrases) state.Insert(p);
      for (const std::string& text : corpus) {
        const auto tokens = Toks(text);
        ExpectSameMentions(reference.Extract(tokens), state.Extract(tokens),
                           "shards=" + std::to_string(shards) + " matcher=" +
                               (kind == MK::kLegacy ? "legacy" : "interned") +
                               " tweet '" + text + "'");
      }
    }
  }
}

// ------------------------------------------------------------- fuzzing --

// Randomized churn: every state (3 shard counts x 2 matchers) receives the
// identical insert/evict/scan sequence; every scan must agree with the
// 1-shard legacy reference. Vocabulary includes non-ASCII tokens (ASCII-only
// case folding must still match byte-for-byte) and tweets inject registered
// phrases under random casing between in-vocab and out-of-vocab noise.
TEST(ScanMatcherFuzzTest, BitIdentityUnderInsertEvictChurn) {
  Rng rng(20260808);
  std::vector<std::string> vocab;
  for (int i = 0; i < 160; ++i) vocab.push_back("tok" + std::to_string(i));
  const std::vector<std::string> non_ascii = {"café",  "zürich", "naïve",
                                              "日本",  "Ωmega",  "łódź"};
  vocab.insert(vocab.end(), non_ascii.begin(), non_ascii.end());

  const std::vector<int> shard_counts = {1, 4, 13};
  std::vector<std::unique_ptr<ShardedGlobalState>> states;
  for (int sc : shard_counts) {
    states.push_back(std::make_unique<ShardedGlobalState>(sc, MK::kLegacy));
    states.push_back(std::make_unique<ShardedGlobalState>(sc, MK::kInterned));
  }
  ShardedGlobalState& reference = *states[0];

  std::vector<std::vector<std::string>> registered;
  auto random_phrase = [&] {
    std::vector<std::string> phrase(static_cast<size_t>(rng.NextInt(1, 4)));
    for (auto& w : phrase) w = vocab[rng.NextU64(vocab.size())];
    return phrase;
  };
  auto random_tweet = [&] {
    std::vector<Token> tokens;
    while (tokens.size() < 12) {
      const double dice = rng.NextDouble();
      if (dice < 0.3 && !registered.empty()) {
        for (const auto& w : registered[rng.NextU64(registered.size())]) {
          Token t;
          const int casing = rng.NextInt(0, 2);
          t.text = casing == 0 ? w
                   : casing == 1 ? ToUpperAscii(w)
                                 : Capitalize(w);
          tokens.push_back(std::move(t));
        }
      } else {
        Token t;
        t.text = dice < 0.8 ? vocab[rng.NextU64(vocab.size())]
                            : "oov" + std::to_string(rng.NextU64(1 << 16));
        tokens.push_back(std::move(t));
      }
    }
    tokens.resize(12);
    return tokens;
  };

  for (int round = 0; round < 8; ++round) {
    // Insert a batch of phrases into every state identically (gid spaces
    // stay equal across shard counts: discovery-order assignment).
    for (int k = 0; k < 24; ++k) {
      const auto phrase = random_phrase();
      const int before = reference.num_candidates();
      for (auto& state : states) {
        const int gid = state->Insert(phrase);
        state->GetOrCreate(gid);
      }
      if (reference.num_candidates() > before) registered.push_back(phrase);
    }
    // Evict + prune a few random live gids from every state (the memory
    // governor's order of operations).
    for (int k = 0; k < 8; ++k) {
      const int gid = rng.NextInt(0, reference.num_candidates() - 1);
      if (reference.IsTombstone(gid)) continue;
      for (auto& state : states) {
        state->Evict(gid);
        state->Prune(gid);
      }
    }
    // Scan: every state must reproduce the reference exactly.
    for (int t = 0; t < 32; ++t) {
      const auto tokens = random_tweet();
      const auto expected = reference.Extract(tokens);
      for (size_t s = 1; s < states.size(); ++s) {
        ExpectSameMentions(
            expected, states[s]->Extract(tokens),
            "round " + std::to_string(round) + " state " + std::to_string(s));
      }
    }
  }
  EXPECT_GT(reference.num_candidates(), 100);
  EXPECT_GT(reference.num_evicted(), 0u);

  // Rebuild-restore interleaving: reconstruct each layout the way checkpoint
  // restore does (live keys re-inserted in gid order, tombstones appended as
  // holes) and require the rebuilt scan to still match the live reference —
  // this is exactly the path that rebuilds the symbol table from the tries.
  for (int sc : shard_counts) {
    for (MK kind : {MK::kLegacy, MK::kInterned}) {
      ShardedGlobalState rebuilt(sc, kind);
      for (int gid = 0; gid < reference.num_candidates(); ++gid) {
        if (reference.IsTombstone(gid)) {
          rebuilt.AppendTombstone();
        } else {
          rebuilt.Insert(Split(reference.CandidateKey(gid)));
        }
      }
      for (int t = 0; t < 16; ++t) {
        const auto tokens = random_tweet();
        ExpectSameMentions(reference.Extract(tokens), rebuilt.Extract(tokens),
                           "rebuilt shards=" + std::to_string(sc));
      }
    }
  }
}

// ------------------------------------------- eviction unregisters index --

TEST(ScanMatcherTest, PruneUnregistersDispatchAndRecyclesSymbols) {
  ShardedGlobalState state(1, MK::kInterned);
  const int g1 = state.Insert({"shared", "alpha"});
  const int g2 = state.Insert({"shared", "beta"});
  state.Insert({"solo"});
  const SymbolTable& syms = state.symbols();
  const int32_t shared_sym = syms.Lookup("shared");
  ASSERT_NE(shared_sym, SymbolTable::kNoSymbol);
  EXPECT_EQ(state.DispatchFanout(shared_sym), 1);
  EXPECT_EQ(state.num_live_symbols(), 4);

  // First prune: the shared first-token edge survives via "shared beta".
  state.Prune(g1);
  EXPECT_EQ(state.DispatchFanout(shared_sym), 1);
  EXPECT_EQ(syms.Lookup("alpha"), SymbolTable::kNoSymbol);
  ASSERT_EQ(state.Extract(Toks("shared beta and shared alpha")).size(), 1u);
  EXPECT_EQ(state.Extract(Toks("shared beta"))[0].candidate_id, g2);

  // Second prune: the root edge dies, the dispatch entry must go with it and
  // the symbol id becomes recyclable.
  state.Prune(g2);
  EXPECT_EQ(state.DispatchFanout(shared_sym), 0);
  EXPECT_EQ(syms.Lookup("shared"), SymbolTable::kNoSymbol);
  EXPECT_EQ(state.num_live_symbols(), 1);  // just "solo"
  EXPECT_TRUE(state.Extract(Toks("shared beta")).empty());

  // A recycled symbol id starts with a clean dispatch slot.
  const int g4 = state.Insert({"gamma", "delta"});
  const auto mentions = state.Extract(Toks("gamma delta then solo"));
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].candidate_id, g4);
  EXPECT_TRUE(mentions[0].span == (TokenSpan{0, 2}));
}

// ----------------------------------------------- Globalizer + pipeline --

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

AnnotatedTweet MakeTweet(long id, const std::string& text) {
  AnnotatedTweet t;
  t.tweet_id = id;
  t.sentence_id = static_cast<int>(id) * 10;
  t.topic_id = 7;
  t.text = text;
  t.tokens = TweetTokenizer().Tokenize(text);
  return t;
}

uint32_t MentionDigest(const GlobalizerOutput& out) {
  uint32_t crc = 0;
  for (const auto& tweet_mentions : out.mentions) {
    for (const TokenSpan& span : tweet_mentions) {
      uint64_t packed[2] = {span.begin, span.end};
      crc = Crc32(packed, sizeof(packed), crc);
    }
  }
  return crc;
}

std::vector<MockLocalSystem::Rule> ScanRules() {
  return {{.phrase = {"coronavirus"}}, {.phrase = {"andy", "beshear"}},
          {.phrase = {"kentucky"}},    {.phrase = {"louisville"}},
          {.phrase = {"vaccine"}},     {.phrase = {"frankfort"}}};
}

Dataset ScanStream(int copies) {
  Dataset d;
  d.name = "scan";
  long id = 1;
  for (int c = 0; c < copies; ++c) {
    d.tweets.push_back(MakeTweet(id++, "the Coronavirus keeps spreading"));
    d.tweets.push_back(MakeTweet(id++, "Andy Beshear spoke in Kentucky today"));
    d.tweets.push_back(MakeTweet(id++, "cases rising in Louisville again"));
    d.tweets.push_back(MakeTweet(id++, "the Vaccine arrives in Frankfort soon"));
    d.tweets.push_back(MakeTweet(id++, "andy beshear kentucky vaccine update"));
  }
  return d;
}

TEST(ScanMatcherPipelineTest, DigestIdenticalAcrossMatchersShardsThreads) {
  uint32_t baseline = 0;
  bool have_baseline = false;
  for (MK kind : {MK::kLegacy, MK::kInterned}) {
    for (int shards : {1, 4, 13}) {
      for (int threads : {1, 4}) {
        GlobalizerOptions opt;
        opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
        opt.batch_size = 8;
        opt.shard_count = shards;
        opt.num_threads = threads;
        opt.matcher = kind;
        MockLocalSystem mock(ScanRules());
        Globalizer g(&mock, nullptr, nullptr, opt);
        ASSERT_TRUE(g.Run(ScanStream(6)).ok());
        const uint32_t digest = MentionDigest(g.Finalize().value());
        if (!have_baseline) {
          baseline = digest;
          have_baseline = true;
        }
        EXPECT_EQ(digest, baseline)
            << "matcher=" << (kind == MK::kLegacy ? "legacy" : "interned")
            << " shards=" << shards << " threads=" << threads;
      }
    }
  }
}

TEST(ScanMatcherPipelineTest, CheckpointRestoreRebuildsSymbolTable) {
  const std::string path = TempPath("scan_matcher_ckpt.bin");
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.shard_count = 4;
  opt.matcher = MK::kLegacy;
  MockLocalSystem mock(ScanRules());
  Globalizer g(&mock, nullptr, nullptr, opt);
  ASSERT_TRUE(g.Run(ScanStream(3)).ok());
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());
  ASSERT_TRUE(g.Run(ScanStream(2)).ok());
  const uint32_t want = MentionDigest(g.Finalize().value());

  // Restore into a different shard count with the interned matcher: the
  // symbol table and dispatch table rebuild from the re-inserted keys (the
  // v5 format carries no symbol section), and the continued stream must
  // produce the identical mentions.
  GlobalizerOptions ropt = opt;
  ropt.shard_count = 13;
  ropt.matcher = MK::kInterned;
  MockLocalSystem rmock(ScanRules());
  Globalizer restored(&rmock, nullptr, nullptr, ropt);
  ASSERT_TRUE(restored.RestoreCheckpoint(path).ok());
  EXPECT_GT(restored.global_state().num_live_symbols(), 0);
  ASSERT_TRUE(restored.Run(ScanStream(2)).ok());
  EXPECT_EQ(MentionDigest(restored.Finalize().value()), want);
  std::filesystem::remove(path);
}

// --------------------------------------------------- EMD_MATCHER hatch --

TEST(ScanMatcherTest, MatcherResolvesFromEnvironment) {
  unsetenv("EMD_MATCHER");
  EXPECT_EQ(ShardedGlobalState::ResolveMatcher(MK::kAuto), MK::kInterned);
  setenv("EMD_MATCHER", "legacy", 1);
  EXPECT_EQ(ShardedGlobalState::ResolveMatcher(MK::kAuto), MK::kLegacy);
  // Explicit kinds win over the environment.
  EXPECT_EQ(ShardedGlobalState::ResolveMatcher(MK::kInterned), MK::kInterned);
  {
    ShardedGlobalState state(2);
    EXPECT_EQ(state.matcher(), MK::kLegacy);
  }
  setenv("EMD_MATCHER", "interned", 1);
  EXPECT_EQ(ShardedGlobalState::ResolveMatcher(MK::kAuto), MK::kInterned);
  {
    ShardedGlobalState state(2);
    EXPECT_EQ(state.matcher(), MK::kInterned);
  }
  unsetenv("EMD_MATCHER");
}

// ------------------------------------------------ zero-allocation scan --

TEST(ScanMatcherTest, SteadyStateScanIsAllocationFree) {
  for (MK kind : {MK::kLegacy, MK::kInterned}) {
    ShardedGlobalState state(4, kind);
    Rng rng(77);
    std::vector<std::vector<std::string>> phrases;
    for (int i = 0; i < 200; ++i) {
      std::vector<std::string> phrase(static_cast<size_t>(rng.NextInt(1, 3)));
      for (auto& w : phrase) w = "word" + std::to_string(rng.NextInt(0, 120));
      state.Insert(phrase);
      phrases.push_back(std::move(phrase));
    }
    std::vector<std::vector<Token>> tweets;
    for (int t = 0; t < 8; ++t) {
      std::vector<Token> tokens;
      while (tokens.size() < 16) {
        for (const auto& w : phrases[rng.NextU64(phrases.size())]) {
          Token tok;
          tok.text = rng.NextBernoulli(0.5) ? ToUpperAscii(w) : w;
          tokens.push_back(std::move(tok));
        }
        Token noise;
        noise.text = "Noise" + std::to_string(rng.NextInt(0, 99));
        tokens.push_back(std::move(noise));
      }
      tokens.resize(16);
      tweets.push_back(std::move(tokens));
    }

    ShardedGlobalState::ScanScratch scratch;
    std::vector<ExtractedMention> out;
    size_t mentions = 0;
    // Warm-up: scratch buffers and the output vector grow to steady state
    // (and the obs counters lazily register).
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& tokens : tweets) {
        state.ExtractInto(tokens, &scratch, &out);
        mentions += out.size();
      }
    }
    ASSERT_GT(mentions, 0u);  // the loop under test does real matching

    const long before = g_allocations.load(std::memory_order_relaxed);
    for (int pass = 0; pass < 5; ++pass) {
      for (const auto& tokens : tweets) {
        state.ExtractInto(tokens, &scratch, &out);
      }
    }
    const long after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0)
        << (kind == MK::kLegacy ? "legacy" : "interned")
        << " scan allocated in steady state";
  }
}

}  // namespace
}  // namespace emd
