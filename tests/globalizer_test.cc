// Pipeline tests for the Globalizer using the scripted MockLocalSystem:
// mention recovery, partial-extraction correction, false-positive removal by
// the classifier, ablation-mode ordering, batching/incremental equivalence.

#include <gtest/gtest.h>

#include "core/classifier_training.h"
#include "core/entity_classifier.h"
#include "core/globalizer.h"
#include "eval/metrics.h"
#include "mock_local_system.h"
#include "text/tweet_tokenizer.h"

namespace emd {
namespace {

AnnotatedTweet MakeTweet(long id, const std::string& text,
                         std::vector<TokenSpan> gold_spans = {}) {
  AnnotatedTweet t;
  t.tweet_id = id;
  t.text = text;
  t.tokens = TweetTokenizer().Tokenize(text);
  for (const auto& s : gold_spans) t.gold.push_back({s, static_cast<int>(s.begin)});
  return t;
}

Dataset CovidStream() {
  // The Fig. 1 scenario: "Coronavirus" detected only when capitalized; the
  // stream repeats it in all case variants.
  Dataset d;
  d.name = "covid";
  d.streaming = true;
  d.tweets = {
      MakeTweet(1, "the Coronavirus keeps spreading", {{1, 2}}),
      MakeTweet(2, "worried about coronavirus cases", {{2, 3}}),
      MakeTweet(3, "CORONAVIRUS cases rising again", {{0, 1}}),
      MakeTweet(4, "the Coronavirus response was slow", {{1, 2}}),
  };
  return d;
}

TEST(GlobalizerTest, LocalOnlyReportsRawDetections) {
  MockLocalSystem mock({{.phrase = {"coronavirus"}, .require_capitalized = true}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kLocalOnly;
  Globalizer g(&mock, nullptr, nullptr, opt);
  GlobalizerOutput out = g.Run(CovidStream()).value();
  // Capitalized in tweets 1, 4 only ("CORONAVIRUS" counts: first char upper).
  EXPECT_EQ(out.mentions[0].size(), 1u);
  EXPECT_EQ(out.mentions[1].size(), 0u);
  EXPECT_EQ(out.mentions[2].size(), 1u);
  EXPECT_EQ(out.mentions[3].size(), 1u);
}

TEST(GlobalizerTest, MentionExtractionRecoversMissedLowercase) {
  MockLocalSystem mock({{.phrase = {"coronavirus"}, .require_capitalized = true}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  GlobalizerOutput out = g.Run(CovidStream()).value();
  // The lowercase mention in tweet 2 is recovered from the CTrie.
  EXPECT_EQ(out.mentions[1].size(), 1u);
  EXPECT_EQ(out.mentions[1][0], (TokenSpan{2, 3}));
  PrfScores s = EvaluateMentions(CovidStream(), out.mentions);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(GlobalizerTest, PartialExtractionIsCorrected) {
  // Tweet A detects the full "Andy Beshear"; tweet B detects only "Andy".
  // The extractor upgrades B's partial detection to the full candidate.
  Dataset d;
  d.tweets = {
      MakeTweet(1, "governor Andy Beshear spoke", {{1, 3}}),
      MakeTweet(2, "Andy Beshear closed schools", {{0, 2}}),
  };
  MockLocalSystem mock({
      {.phrase = {"andy", "beshear"}, .require_capitalized = false},
      {.phrase = {"andy", "beshear"}, .partial = true},
  });
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  GlobalizerOutput out = g.Run(d).value();
  ASSERT_EQ(out.mentions[1].size(), 1u);
  EXPECT_EQ(out.mentions[1][0], (TokenSpan{0, 2})) << "partial span extended";
}

// Trains a tiny classifier that separates "appears capitalized somewhere"
// from "always lowercase" syntactic distributions.
EntityClassifier TrainToyClassifier() {
  EntityClassifierOptions copt;
  copt.input_dim = 7;
  EntityClassifier clf(copt);
  std::vector<ClassifierExample> examples;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    // Entities: mostly proper-capitalized mass; the remainder may be
    // start-of-sentence or lowercase mentions.
    Mat e(1, 6);
    const float cap = rng.NextFloat(0.55f, 1.f);
    e(0, 0) = cap;
    if (rng.NextBernoulli(0.5)) {
      e(0, 1) = 1.f - cap;
    } else {
      e(0, 4) = 1.f - cap;
    }
    examples.push_back({EntityClassifier::MakeFeatures(e, 1), true});
    // Junk: mostly lowercase mass; the remainder is emphasis or
    // sentence-start capitalization.
    Mat j(1, 6);
    const float low = rng.NextFloat(0.6f, 1.f);
    j(0, 4) = low;
    j(0, rng.NextBernoulli(0.5) ? 0 : 1) = 1.f - low;
    examples.push_back({EntityClassifier::MakeFeatures(j, 1), false});
  }
  EntityClassifierTrainOptions topt;
  topt.max_epochs = 200;
  clf.Train(examples, topt);
  return clf;
}

TEST(GlobalizerTest, FullModeRemovesConsistentlyLowercaseFalsePositives) {
  // "breaking" is detected by the mock as an FP whenever capitalized; it also
  // occurs lowercase throughout the stream, so its global syntactic
  // distribution is junk-like. "Beshear" is a real entity, capitalized.
  Dataset d;
  d.tweets = {
      MakeTweet(1, "Breaking story about Beshear today", {{3, 4}}),
      MakeTweet(2, "More breaking updates arriving now"),
      MakeTweet(3, "Still breaking coverage from Beshear", {{4, 5}}),
      MakeTweet(4, "Again breaking reports tonight"),
      MakeTweet(5, "Beshear responds to Capitol questions", {{0, 1}}),
  };
  MockLocalSystem mock({
      {.phrase = {"breaking"}, .require_capitalized = true},
      {.phrase = {"beshear"}, .require_capitalized = true},
  });
  EntityClassifier clf = TrainToyClassifier();
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kFull;
  Globalizer g(&mock, nullptr, &clf, opt);
  GlobalizerOutput out = g.Run(d).value();
  PrfScores s = EvaluateMentions(d, out.mentions);
  EXPECT_DOUBLE_EQ(s.precision, 1.0) << "the capitalized 'Breaking' FP is removed";
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_GE(out.num_non_entity, 1);
}

TEST(GlobalizerTest, AblationOrderingOnInconsistentStream) {
  // local-only <= +mention-extraction on recall (Fig. 6 ordering).
  Dataset d = CovidStream();
  auto run = [&](GlobalizerOptions::Mode mode) {
    MockLocalSystem mock({{.phrase = {"coronavirus"}, .require_capitalized = true}});
    GlobalizerOptions opt;
    opt.mode = mode;
    Globalizer g(&mock, nullptr, nullptr, opt);
    return EvaluateMentions(d, g.Run(d).value().mentions);
  };
  PrfScores local = run(GlobalizerOptions::Mode::kLocalOnly);
  PrfScores extraction = run(GlobalizerOptions::Mode::kMentionExtraction);
  EXPECT_GT(extraction.recall, local.recall);
  EXPECT_GE(extraction.f1, local.f1);
}

TEST(GlobalizerTest, BatchedRunEqualsSingleBatchOnOutputsForLateCandidates) {
  // Candidates discovered in batch 2 do not retroactively re-scan batch 1
  // (incremental semantics), while a single batch covers everything.
  Dataset d;
  d.tweets = {
      MakeTweet(1, "talk about coronavirus spreading", {{2, 3}}),   // lowercase only
      MakeTweet(2, "the Coronavirus response intensifies", {{1, 2}}),
  };
  auto run = [&](size_t batch_size) {
    MockLocalSystem mock({{.phrase = {"coronavirus"}, .require_capitalized = true}});
    GlobalizerOptions opt;
    opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
    opt.batch_size = batch_size;
    Globalizer g(&mock, nullptr, nullptr, opt);
    return g.Run(d).value();
  };
  GlobalizerOutput one_batch = run(10);
  GlobalizerOutput two_batches = run(1);
  // Single batch recovers the earlier lowercase mention; per-tweet batches
  // cannot (the candidate was unknown when tweet 1's batch was scanned).
  EXPECT_EQ(one_batch.mentions[0].size(), 1u);
  EXPECT_EQ(two_batches.mentions[0].size(), 0u);
  EXPECT_EQ(two_batches.mentions[1].size(), 1u);
}

TEST(GlobalizerTest, DeepSystemRequiresPhraseEmbedder) {
  MockLocalSystem deep_mock({}, /*dim=*/8);
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  EXPECT_DEATH(Globalizer(&deep_mock, nullptr, nullptr, opt), "Phrase Embedder");
}

TEST(GlobalizerTest, DeepEmbeddingsPooledThroughPhraseEmbedder) {
  MockLocalSystem deep_mock({{.phrase = {"beshear"}, .require_capitalized = false}},
                            /*dim=*/8);
  PhraseEmbedder pe(8, 4);
  Dataset d;
  d.tweets = {
      MakeTweet(1, "Beshear spoke again", {{0, 1}}),
      MakeTweet(2, "meeting with Beshear now", {{2, 3}}),
  };
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&deep_mock, &pe, nullptr, opt);
  g.Run(d).value();
  const CandidateBase& cb = g.candidate_base();
  ASSERT_GE(cb.size(), 1u);
  const CandidateRecord& rec = cb.at(0);
  EXPECT_EQ(rec.embedding_count, 2);
  EXPECT_EQ(rec.GlobalEmbedding().cols(), 4);
}

TEST(GlobalizerTest, TimingFieldsPopulated) {
  MockLocalSystem mock({{.phrase = {"coronavirus"}}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  GlobalizerOutput out = g.Run(CovidStream()).value();
  EXPECT_GE(out.local_seconds, 0.0);
  EXPECT_GE(out.global_seconds, 0.0);
  EXPECT_EQ(mock.calls(), 4);
}

TEST(GlobalizerTest, MinEvidenceShieldsSingletonsFromBeta) {
  // A singleton true entity whose lone mention looks junk-like must not be
  // erased by a confident-looking non-entity verdict.
  Dataset d;
  d.tweets = {MakeTweet(1, "Tonight we meet kovely downtown", {{3, 4}})};
  MockLocalSystem mock({{.phrase = {"kovely"}}});
  EntityClassifier clf = TrainToyClassifier();  // lowercase -> non-entity
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kFull;
  opt.min_evidence_mentions = 2;
  opt.low_evidence_beta = 0.f;  // shield unconditionally for this test
  Globalizer g(&mock, nullptr, &clf, opt);
  GlobalizerOutput out = g.Run(d).value();
  ASSERT_EQ(out.mentions[0].size(), 1u) << "singleton kept via ambiguous fallback";

  // With the evidence floor disabled the verdict applies and the mention dies.
  MockLocalSystem mock2({{.phrase = {"kovely"}}});
  opt.min_evidence_mentions = 0;
  Globalizer g2(&mock2, nullptr, &clf, opt);
  GlobalizerOutput out2 = g2.Run(d).value();
  EXPECT_TRUE(out2.mentions[0].empty());
}

TEST(ClassifierTrainingTest, BuildsLabelledExamplesWithPrefixPools) {
  Dataset d;
  d.tweets = {
      MakeTweet(1, "Beshear spoke today", {{0, 1}}),
      MakeTweet(2, "with Beshear again", {{1, 2}}),
      MakeTweet(3, "Beshear responds now", {{0, 1}}),
  };
  MockLocalSystem mock({{.phrase = {"beshear"}}});
  auto examples = BuildClassifierExamples(d, &mock, nullptr, 100);
  // 3 mentions -> prefix pools at 1, 2, and full(3): 3 examples, all positive.
  ASSERT_EQ(examples.size(), 3u);
  for (const auto& ex : examples) {
    EXPECT_TRUE(ex.is_entity);
    EXPECT_EQ(ex.features.cols(), 7);
  }
}

}  // namespace
}  // namespace emd
