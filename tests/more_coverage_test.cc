// Additional coverage: optimizer details, loss gradients in probability
// space, vocabulary ordering ties, CoNLL multi-sentence ids, topic routing
// stats, CTrie scaling, and recall monotonicity of mention extraction.

#include <gtest/gtest.h>

#include <set>

#include "core/globalizer.h"
#include "eval/metrics.h"
#include "mock_local_system.h"
#include "nn/losses.h"
#include "nn/optimizer.h"
#include "stream/conll_io.h"
#include "stream/datasets.h"
#include "stream/topic_classifier.h"
#include "text/tweet_tokenizer.h"
#include "text/vocabulary.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace emd {
namespace {

TEST(OptimizerDetailTest, WeightDecayShrinksUnusedWeights) {
  Mat w(1, 1), g(1, 1);
  w(0, 0) = 1.f;
  ParamSet params;
  params.Register("w", &w, &g);
  SgdOptimizer sgd(0.1f, /*momentum=*/0.f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 50; ++i) {
    params.ZeroGrads();  // no task gradient: pure decay
    sgd.Step(&params);
  }
  EXPECT_LT(w(0, 0), 0.7f);
  EXPECT_GT(w(0, 0), 0.f);
}

TEST(OptimizerDetailTest, MomentumAcceleratesDescent) {
  auto run = [](float momentum) {
    Mat w(1, 1), g(1, 1);
    w(0, 0) = 10.f;
    ParamSet params;
    params.Register("w", &w, &g);
    SgdOptimizer sgd(0.01f, momentum);
    for (int i = 0; i < 40; ++i) {
      g(0, 0) = 2.f * w(0, 0);
      sgd.Step(&params);
      params.ZeroGrads();
    }
    return std::fabs(w(0, 0));
  };
  EXPECT_LT(run(0.9f), run(0.f));
}

TEST(LossDetailTest, BceProbSpaceGradient) {
  Mat prob(1, 2, {0.7f, 0.2f});
  Mat target(1, 2, {1.f, 0.f});
  Mat dprob;
  const double base = BceLoss(prob, target, &dprob);
  EXPECT_GT(base, 0);
  constexpr double kEps = 1e-4;
  for (int i = 0; i < 2; ++i) {
    Mat scratch;
    const float orig = prob.data()[i];
    prob.data()[i] = orig + static_cast<float>(kEps);
    const double up = BceLoss(prob, target, &scratch);
    prob.data()[i] = orig - static_cast<float>(kEps);
    const double down = BceLoss(prob, target, &scratch);
    prob.data()[i] = orig;
    EXPECT_NEAR(dprob.data()[i], (up - down) / (2 * kEps), 1e-2);
  }
}

TEST(VocabularyDetailTest, CountTiesBreakLexicographically) {
  std::unordered_map<std::string, int> counts = {{"zeta", 3}, {"alpha", 3}};
  Vocabulary v = Vocabulary::FromCounts(counts, 1);
  EXPECT_LT(v.Id("alpha"), v.Id("zeta"));
}

TEST(ConllDetailTest, ExplicitIdsSurviveRoundTrip) {
  const std::string text =
      "# id = 42\nAndy\tB\nspoke\tO\n\n# id = 99\nhello\tO\n\n";
  auto parsed = DatasetFromConll(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->tweets[0].tweet_id, 42);
  EXPECT_EQ(parsed->tweets[1].tweet_id, 99);
  // And back out.
  auto again = DatasetFromConll(DatasetToConll(*parsed));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->tweets[1].tweet_id, 99);
}

TEST(CTrieScaleTest, ThousandsOfCandidates) {
  CTrie trie;
  Rng rng(5);
  std::vector<std::pair<std::vector<std::string>, int>> all;
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::string> phrase;
    const int len = rng.NextInt(1, 3);
    for (int k = 0; k < len; ++k) {
      phrase.push_back("w" + std::to_string(rng.NextU64(400)));
    }
    all.emplace_back(phrase, trie.Insert(phrase));
  }
  for (const auto& [phrase, id] : all) EXPECT_EQ(trie.Find(phrase), id);
  EXPECT_LE(trie.num_candidates(), 5000);
  EXPECT_GE(trie.max_candidate_length(), 1);
}

// Mention extraction can only add or extend detections relative to what local
// EMD found — in extraction mode, every gold span the local system detected
// somewhere remains covered everywhere it occurs.
TEST(RecallMonotonicityTest, ExtractionModeNeverLosesCoveredSurfaces) {
  EntityCatalogOptions copt;
  copt.entities_per_topic = 60;
  copt.seed = 12;
  EntityCatalog catalog = EntityCatalog::Build(copt);
  DatasetSuiteOptions sopt;
  sopt.scale = 0.06;
  Dataset stream = BuildD1(catalog, sopt);

  std::vector<MockLocalSystem::Rule> rules;
  for (int id : catalog.TopicEntityIds(Topic::kPolitics)) {
    const Entity& e = catalog.entity(id);
    std::vector<std::string> phrase;
    for (const auto& t : e.name_tokens) phrase.push_back(ToLowerAscii(t));
    rules.push_back({.phrase = phrase, .require_capitalized = true});
    if (rules.size() >= 50) break;
  }
  auto run = [&](GlobalizerOptions::Mode mode) {
    MockLocalSystem mock(rules);
    GlobalizerOptions opt;
    opt.mode = mode;
    Globalizer g(&mock, nullptr, nullptr, opt);
    return g.Run(stream).value();
  };
  PrfScores local =
      EvaluateMentions(stream, run(GlobalizerOptions::Mode::kLocalOnly).mentions);
  PrfScores extraction = EvaluateMentions(
      stream, run(GlobalizerOptions::Mode::kMentionExtraction).mentions);
  EXPECT_GE(extraction.recall, local.recall);
}

TEST(TopicRoutingTest, RoutedStreamsRetainGold) {
  EntityCatalogOptions copt;
  copt.entities_per_topic = 60;
  copt.seed = 13;
  EntityCatalog catalog = EntityCatalog::Build(copt);
  Dataset train = BuildTrainingCorpus(catalog, 400, 14);
  TopicClassifier clf;
  clf.Train(train);
  DatasetSuiteOptions sopt;
  sopt.scale = 0.03;
  Dataset mixed = BuildD4(catalog, sopt);
  size_t gold_before = 0;
  for (const auto& t : mixed.tweets) gold_before += t.gold.size();
  size_t gold_after = 0;
  for (const auto& s : clf.Route(mixed)) {
    for (const auto& t : s.tweets) gold_after += t.gold.size();
  }
  EXPECT_EQ(gold_before, gold_after);
}

TEST(MetricsDetailTest, DuplicatePredictionsCountOnce) {
  Dataset d;
  AnnotatedTweet t;
  t.tokens = TweetTokenizer().Tokenize("Andy spoke");
  t.gold = {{{0, 1}, 1}};
  d.tweets.push_back(t);
  // The same span predicted twice must not double-count as tp.
  PrfScores s = EvaluateMentions(d, {{{0, 1}, {0, 1}}});
  EXPECT_EQ(s.tp, 1);
  EXPECT_EQ(s.fp, 0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

}  // namespace
}  // namespace emd
