// Failure-injection tests: corrupted model files, malformed inputs,
// defensive-check behaviour at API boundaries, failpoint-driven fault
// isolation in the Globalizer, and checkpoint crash-safety.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/entity_classifier.h"
#include "core/globalizer.h"
#include "core/phrase_embedder.h"
#include "emd/pos_tagger.h"
#include "eval/metrics.h"
#include "mock_local_system.h"
#include "nn/serialize.h"
#include "stream/batching.h"
#include "stream/conll_io.h"
#include "text/tweet_tokenizer.h"
#include "text/vocabulary.h"
#include "util/failpoint.h"
#include "util/file_io.h"

namespace emd {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Disarms every failpoint on scope exit so no test leaks armed points.
struct FailpointGuard {
  FailpointGuard() { failpoint::DisableAll(); }
  ~FailpointGuard() { failpoint::DisableAll(); }
};

TEST(FailureInjectionTest, LoadParamsRejectsTruncatedFile) {
  Mat w(4, 4), g(4, 4);
  ParamSet params;
  params.Register("w", &w, &g);
  const std::string path = TempPath("emd_trunc.bin");
  ASSERT_TRUE(SaveParams(params, path).ok());
  // Truncate the file in the middle of the payload.
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  ASSERT_TRUE(WriteStringToFile(path, content->substr(0, content->size() / 2)).ok());
  EXPECT_TRUE(LoadParams(&params, path).IsCorruption());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, LoadParamsRejectsGarbageMagic) {
  const std::string path = TempPath("emd_magic.bin");
  ASSERT_TRUE(WriteStringToFile(path, "this is not a model file at all").ok());
  Mat w(1, 1), g(1, 1);
  ParamSet params;
  params.Register("w", &w, &g);
  EXPECT_TRUE(LoadParams(&params, path).IsCorruption());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, LoadParamsMissingFileIsIoError) {
  Mat w(1, 1), g(1, 1);
  ParamSet params;
  params.Register("w", &w, &g);
  EXPECT_TRUE(LoadParams(&params, "/nonexistent/emd/model.bin").IsIoError());
}

TEST(FailureInjectionTest, PhraseEmbedderLoadWrongDims) {
  PhraseEmbedder small(4, 2);
  const std::string path = TempPath("emd_pe_dims.bin");
  ASSERT_TRUE(small.Save(path).ok());
  PhraseEmbedder big(8, 2);
  EXPECT_FALSE(big.Load(path).ok());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, PosTaggerLoadTruncated) {
  const std::string path = TempPath("emd_pos_trunc.model");
  ASSERT_TRUE(WriteStringToFile(path, "5\nw=only one feature line").ok());
  PosTagger tagger;
  EXPECT_FALSE(tagger.Load(path).ok());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, VocabularyCorruptHeaders) {
  EXPECT_TRUE(Vocabulary::Deserialize("vocab notanumber\n").status().IsCorruption() ||
              !Vocabulary::Deserialize("vocab notanumber\n").ok());
  EXPECT_FALSE(Vocabulary::Deserialize("vocab 99\n<pad>\n<unk>\n").ok())
      << "declared size larger than payload";
  EXPECT_FALSE(Vocabulary::Deserialize("vocab 3\nwrong\n<unk>\nx\n").ok())
      << "reserved tokens missing";
}

TEST(FailureInjectionTest, ConllParserReportsLineNumbers) {
  const std::string bad = "good\tO\nbadline\n\n";
  auto r = DatasetFromConll(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().message();
}

TEST(FailureInjectionTest, ConllIgnoresCrLf) {
  auto r = DatasetFromConll("Andy\tB\r\nsays\tO\r\n\r\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->tweets[0].tokens[0].text, "Andy");
}

TEST(FailureInjectionDeathTest, MatShapeChecksAbort) {
  Mat a(2, 2), b(3, 3);
  EXPECT_DEATH(a.Add(b), "check failed");
  EXPECT_DEATH(MatMul(a, b), "check failed");
  EXPECT_DEATH(a.at(5, 0), "check failed");
}

TEST(FailureInjectionDeathTest, CandidateBaseUnknownIdAborts) {
  CandidateBase base;
  EXPECT_DEATH(base.at(3), "check failed");
}

TEST(FailureInjectionDeathTest, ResultValueOnErrorAborts) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_DEATH((void)r.value(), "Result::value");
}

TEST(FailureInjectionTest, ClassifierSaveToUnwritablePath) {
  EntityClassifier clf({.input_dim = 7});
  EXPECT_TRUE(clf.Save("/nonexistent/dir/model.bin").IsIoError());
}

// ---------------------------------------------------------------------------
// Failpoint registry.
// ---------------------------------------------------------------------------

TEST(FailpointTest, DisabledPointIsFree) {
  FailpointGuard guard;
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_TRUE(EMD_FAILPOINT("never.armed.point").ok());
  EXPECT_EQ(failpoint::HitCount("never.armed.point"), 0) << "fast path taken";
}

TEST(FailpointTest, EnableAfterSkipsAndCaps) {
  FailpointGuard guard;
  failpoint::EnableAfter("t.reg.op", Status::IoError("boom"), /*skip=*/2,
                         /*max_fires=*/1);
  EXPECT_TRUE(failpoint::AnyArmed());
  EXPECT_TRUE(EMD_FAILPOINT("t.reg.op").ok());   // hit 1: skipped
  EXPECT_TRUE(EMD_FAILPOINT("t.reg.op").ok());   // hit 2: skipped
  const Status fired = EMD_FAILPOINT("t.reg.op");  // hit 3: fires
  EXPECT_TRUE(fired.IsIoError());
  EXPECT_EQ(fired.message(), "boom");
  EXPECT_TRUE(EMD_FAILPOINT("t.reg.op").ok()) << "max_fires=1 exhausted";
  EXPECT_EQ(failpoint::HitCount("t.reg.op"), 4);
  EXPECT_EQ(failpoint::FireCount("t.reg.op"), 1);
}

TEST(FailpointTest, DisableStopsFiringAndDisableAllClears) {
  FailpointGuard guard;
  failpoint::EnableAfter("t.reg.stop", Status::Internal("x"));
  EXPECT_FALSE(EMD_FAILPOINT("t.reg.stop").ok());
  failpoint::Disable("t.reg.stop");
  EXPECT_TRUE(EMD_FAILPOINT("t.reg.stop").ok());
  EXPECT_EQ(failpoint::FireCount("t.reg.stop"), 1) << "counters survive Disable";
  failpoint::DisableAll();
  EXPECT_EQ(failpoint::FireCount("t.reg.stop"), 0);
  EXPECT_FALSE(failpoint::AnyArmed());
}

TEST(FailpointTest, ProbabilityModeIsSeededDeterministic) {
  FailpointGuard guard;
  auto run = [](uint64_t seed) {
    failpoint::EnableWithProbability("t.reg.prob", Status::IoError("p"), 0.5,
                                     seed);
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      pattern += EMD_FAILPOINT("t.reg.prob").ok() ? '.' : 'X';
    }
    return pattern;
  };
  const std::string a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b) << "same seed, same firing pattern";
  EXPECT_NE(a, c);
  EXPECT_NE(a.find('X'), std::string::npos) << "p=0.5 fires sometimes";
  EXPECT_NE(a.find('.'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Error-isolated execution cycles.
// ---------------------------------------------------------------------------

AnnotatedTweet FiTweet(long id, const std::string& text,
                       std::vector<TokenSpan> gold_spans = {}) {
  AnnotatedTweet t;
  t.tweet_id = id;
  t.text = text;
  t.tokens = TweetTokenizer().Tokenize(text);
  for (const auto& s : gold_spans) t.gold.push_back({s, static_cast<int>(s.begin)});
  return t;
}

Dataset FiStream() {
  Dataset d;
  d.name = "fi";
  d.tweets = {
      FiTweet(1, "the Coronavirus keeps spreading", {{1, 2}}),
      FiTweet(2, "worried about coronavirus cases", {{2, 3}}),
      FiTweet(3, "CORONAVIRUS cases rising again", {{0, 1}}),
      FiTweet(4, "the Coronavirus response was slow", {{1, 2}}),
  };
  return d;
}

TEST(FailureInjectionTest, LocalSystemFaultQuarantinesOneTweet) {
  FailpointGuard guard;
  // The second tweet's Local EMD dies; the stream must absorb it.
  failpoint::EnableAfter("emd.mock.process", Status::Internal("OOM in tagger"),
                         /*skip=*/1, /*max_fires=*/1);
  MockLocalSystem mock({{.phrase = {"coronavirus"}, .require_capitalized = true}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  GlobalizerOutput out = g.Run(FiStream()).value();

  EXPECT_EQ(out.num_quarantined, 1);
  ASSERT_EQ(out.mentions.size(), 4u) << "quarantined tweet keeps its slot";
  EXPECT_TRUE(out.mentions[1].empty()) << "no mentions from the dead tweet";
  // The other three tweets still run the full pipeline.
  EXPECT_EQ(out.mentions[0].size(), 1u);
  EXPECT_EQ(out.mentions[2].size(), 1u);
  EXPECT_EQ(out.mentions[3].size(), 1u);
}

TEST(FailureInjectionTest, QuarantineIsolationKeepsRestOfBatchIdentical) {
  FailpointGuard guard;
  auto run = [](bool inject) {
    if (inject) {
      failpoint::EnableAfter("emd.mock.process", Status::Internal("x"),
                             /*skip=*/2, /*max_fires=*/1);
    }
    MockLocalSystem mock({{.phrase = {"coronavirus"}, .require_capitalized = true}});
    GlobalizerOptions opt;
    opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
    Globalizer g(&mock, nullptr, nullptr, opt);
    GlobalizerOutput out = g.Run(FiStream()).value();
    failpoint::DisableAll();
    return out;
  };
  GlobalizerOutput clean = run(false);
  GlobalizerOutput faulty = run(true);
  ASSERT_EQ(faulty.num_quarantined, 1);
  for (size_t i = 0; i < clean.mentions.size(); ++i) {
    if (i == 2) continue;  // the quarantined tweet
    EXPECT_EQ(clean.mentions[i], faulty.mentions[i]) << "tweet " << i;
  }
}

TEST(FailureInjectionTest, PhraseEmbedderFaultDegradesToMeanPool) {
  FailpointGuard guard;
  Dataset d;
  d.tweets = {
      FiTweet(1, "Beshear spoke again", {{0, 1}}),
      FiTweet(2, "meeting with Beshear now", {{2, 3}}),
      FiTweet(3, "Beshear responds to questions", {{0, 1}}),
  };
  auto run = [&](bool inject) {
    if (inject) {
      failpoint::EnableAfter("core.phrase_embedder.embed",
                             Status::Internal("embedder wedged"));
    }
    MockLocalSystem deep_mock(
        {{.phrase = {"beshear"}, .require_capitalized = false}}, /*dim=*/8);
    // in_dim == out_dim, so the raw mean-pool fallback is shape-compatible.
    PhraseEmbedder pe(8, 8);
    GlobalizerOptions opt;
    opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
    Globalizer g(&deep_mock, &pe, nullptr, opt);
    GlobalizerOutput out = g.Run(d).value();
    failpoint::DisableAll();
    return out;
  };
  GlobalizerOutput clean = run(false);
  GlobalizerOutput degraded = run(true);

  EXPECT_EQ(clean.num_degraded, 0);
  EXPECT_GT(degraded.num_degraded, 0);
  // The degraded cycle completes and detection effectiveness is unharmed:
  // mention output is identical (the fallback only changes embeddings).
  const double clean_f1 = EvaluateMentions(d, clean.mentions).f1;
  const double degraded_f1 = EvaluateMentions(d, degraded.mentions).f1;
  EXPECT_NEAR(degraded_f1, clean_f1, 1e-9);
  EXPECT_EQ(clean.mentions, degraded.mentions);
}

TEST(FailureInjectionTest, ClassifierFaultDegradesToMentionExtraction) {
  FailpointGuard guard;
  Dataset d;
  d.tweets = {
      FiTweet(1, "Breaking story about Beshear today", {{3, 4}}),
      FiTweet(2, "More breaking updates arriving now"),
      FiTweet(3, "Still breaking coverage from Beshear", {{4, 5}}),
  };
  auto rules = [] {
    return std::vector<MockLocalSystem::Rule>{
        {.phrase = {"breaking"}, .require_capitalized = true},
        {.phrase = {"beshear"}, .require_capitalized = true},
    };
  };
  EntityClassifier clf({.input_dim = 7});

  // Reference: the same stream in mention-extraction mode (no classifier).
  MockLocalSystem extraction_mock(rules());
  GlobalizerOptions ex_opt;
  ex_opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer extraction(&extraction_mock, nullptr, nullptr, ex_opt);
  GlobalizerOutput expected = extraction.Run(d).value();

  // Full mode with a classifier that faults on every evaluation.
  failpoint::EnableAfter("core.entity_classifier.classify",
                         Status::Internal("classifier wedged"));
  MockLocalSystem full_mock(rules());
  GlobalizerOptions full_opt;
  full_opt.mode = GlobalizerOptions::Mode::kFull;
  Globalizer full(&full_mock, nullptr, &clf, full_opt);
  GlobalizerOutput out = full.Run(d).value();

  EXPECT_TRUE(out.classifier_degraded);
  EXPECT_EQ(out.mentions, expected.mentions)
      << "degraded kFull emits the mention-extraction output";
  EXPECT_EQ(out.num_entity, 0);
  EXPECT_EQ(out.num_candidates, expected.num_candidates);
}

TEST(FailureInjectionTest, ClassifierRecoversNextCycle) {
  FailpointGuard guard;
  Dataset d = FiStream();
  MockLocalSystem mock({{.phrase = {"coronavirus"}, .require_capitalized = true}});
  EntityClassifier clf({.input_dim = 7});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kFull;
  opt.batch_size = 2;
  Globalizer g(&mock, nullptr, &clf, opt);
  StreamBatcher batcher(&d, 2);

  // Cycle 1: classifier down.
  failpoint::EnableAfter("core.entity_classifier.classify",
                         Status::Internal("down"), /*skip=*/0, /*max_fires=*/-1);
  ASSERT_TRUE(g.ProcessBatch(batcher.Next()).ok());
  EXPECT_TRUE(g.Finalize().value().classifier_degraded);

  // Cycle 2: classifier back up — degradation must not be sticky.
  failpoint::DisableAll();
  ASSERT_TRUE(g.ProcessBatch(batcher.Next()).ok());
  EXPECT_FALSE(g.Finalize().value().classifier_degraded);
}

TEST(FailureInjectionTest, BatchLevelFaultFailsRunWithoutAborting) {
  FailpointGuard guard;
  failpoint::EnableAfter("core.globalizer.process_batch",
                         Status::IoError("stream source died"));
  MockLocalSystem mock({{.phrase = {"coronavirus"}}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  Result<GlobalizerOutput> r = g.Run(FiStream());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIoError());
  EXPECT_EQ(g.processed_tweets(), 0u) << "failed batch records nothing";
}

// ---------------------------------------------------------------------------
// Crash-safe checkpoint/restore.
// ---------------------------------------------------------------------------

TEST(FailureInjectionTest, CheckpointRoundTripsState) {
  const std::string path = TempPath("emd_ckpt_roundtrip.bin");
  MockLocalSystem mock({{.phrase = {"coronavirus"}, .require_capitalized = true}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  Dataset d = FiStream();
  ASSERT_TRUE(
      g.ProcessBatch(std::span<const AnnotatedTweet>(d.tweets.data(), 2)).ok());
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());

  MockLocalSystem mock2({{.phrase = {"coronavirus"}, .require_capitalized = true}});
  Globalizer restored(&mock2, nullptr, nullptr, opt);
  ASSERT_TRUE(restored.RestoreCheckpoint(path).ok());
  EXPECT_EQ(restored.processed_tweets(), 2u);
  EXPECT_EQ(restored.ctrie().num_candidates(), g.ctrie().num_candidates());
  EXPECT_EQ(restored.candidate_base().size(), g.candidate_base().size());
  EXPECT_EQ(restored.Finalize().value().mentions, g.Finalize().value().mentions);
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, KillAndResumeProducesIdenticalOutput) {
  // Deep system + phrase embedder: the checkpoint stores float-exact
  // embedding sums, so the resumed run must match bit for bit.
  const std::string path = TempPath("emd_ckpt_resume.bin");
  Dataset d;
  d.tweets = {
      FiTweet(1, "governor Andy Beshear spoke", {{1, 3}}),
      FiTweet(2, "Andy Beshear closed schools", {{0, 2}}),
      FiTweet(3, "praise for andy beshear today", {{2, 4}}),
      FiTweet(4, "Beshear responds to questions", {{0, 1}}),
      FiTweet(5, "meeting with Andy Beshear now", {{2, 4}}),
      FiTweet(6, "andy beshear again in frankfort", {{0, 2}}),
  };
  auto make_mock = [] {
    return MockLocalSystem(
        {{.phrase = {"andy", "beshear"}, .require_capitalized = true},
         {.phrase = {"beshear"}, .require_capitalized = true}},
        /*dim=*/8);
  };
  PhraseEmbedder pe(8, 4);
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.batch_size = 2;

  // Run A: uninterrupted.
  MockLocalSystem mock_a = make_mock();
  Globalizer a(&mock_a, &pe, nullptr, opt);
  GlobalizerOutput out_a = a.Run(d).value();

  // Run B: killed after the first batch...
  MockLocalSystem mock_b1 = make_mock();
  {
    Globalizer b(&mock_b1, &pe, nullptr, opt);
    StreamBatcher batcher(&d, 2);
    ASSERT_TRUE(b.ProcessBatch(batcher.Next()).ok());
    ASSERT_TRUE(b.SaveCheckpoint(path).ok());
    // ...the process dies here; b is destroyed with 4 tweets unprocessed.
  }
  // ...and resumed in a fresh process.
  MockLocalSystem mock_b2 = make_mock();
  Globalizer b(&mock_b2, &pe, nullptr, opt);
  ASSERT_TRUE(b.RestoreCheckpoint(path).ok());
  ASSERT_EQ(b.processed_tweets(), 2u);
  StreamBatcher batcher(&d, 2);
  batcher.Seek(b.processed_tweets());
  while (batcher.HasNext()) ASSERT_TRUE(b.ProcessBatch(batcher.Next()).ok());
  GlobalizerOutput out_b = b.Finalize().value();

  EXPECT_EQ(out_a.mentions, out_b.mentions);
  EXPECT_EQ(out_a.num_candidates, out_b.num_candidates);
  ASSERT_EQ(a.candidate_base().size(), b.candidate_base().size());
  for (size_t c = 0; c < a.candidate_base().size(); ++c) {
    if (!a.candidate_base().Contains(static_cast<int>(c))) continue;
    const CandidateRecord& ra = a.candidate_base().at(static_cast<int>(c));
    const CandidateRecord& rb = b.candidate_base().at(static_cast<int>(c));
    ASSERT_EQ(ra.embedding_count, rb.embedding_count);
    for (size_t j = 0; j < ra.embedding_sum.size(); ++j) {
      EXPECT_EQ(ra.embedding_sum.data()[j], rb.embedding_sum.data()[j])
          << "embedding sums must be bit-identical";
    }
  }
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, TruncatedCheckpointIsCorruption) {
  const std::string path = TempPath("emd_ckpt_trunc.bin");
  MockLocalSystem mock({{.phrase = {"coronavirus"}}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  Dataset d = FiStream();
  ASSERT_TRUE(g.ProcessBatch(std::span<const AnnotatedTweet>(
                                 d.tweets.data(), d.tweets.size()))
                  .ok());
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());

  for (size_t cut : {content->size() / 2, content->size() - 1, size_t{3}}) {
    ASSERT_TRUE(WriteStringToFile(path, content->substr(0, cut)).ok());
    MockLocalSystem mock2({{.phrase = {"coronavirus"}}});
    Globalizer fresh(&mock2, nullptr, nullptr, opt);
    const Status st = fresh.RestoreCheckpoint(path);
    EXPECT_TRUE(st.IsCorruption()) << "cut=" << cut << ": " << st;
    EXPECT_EQ(fresh.processed_tweets(), 0u) << "failed restore leaves no state";
  }
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, BitFlippedCheckpointIsCorruption) {
  const std::string path = TempPath("emd_ckpt_flip.bin");
  MockLocalSystem mock({{.phrase = {"coronavirus"}}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  Dataset d = FiStream();
  ASSERT_TRUE(g.ProcessBatch(std::span<const AnnotatedTweet>(
                                 d.tweets.data(), d.tweets.size()))
                  .ok());
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());

  // Flip one bit at several offsets, including inside the CRC footer itself.
  for (size_t pos : {size_t{9}, content->size() / 2, content->size() - 2}) {
    std::string corrupted = *content;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x10);
    ASSERT_TRUE(WriteStringToFile(path, corrupted).ok());
    MockLocalSystem mock2({{.phrase = {"coronavirus"}}});
    Globalizer fresh(&mock2, nullptr, nullptr, opt);
    const Status st = fresh.RestoreCheckpoint(path);
    EXPECT_TRUE(st.IsCorruption()) << "pos=" << pos << ": " << st;
  }
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, CheckpointModeMismatchRejected) {
  const std::string path = TempPath("emd_ckpt_mode.bin");
  MockLocalSystem mock({{.phrase = {"coronavirus"}}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());

  MockLocalSystem mock2({{.phrase = {"coronavirus"}}});
  GlobalizerOptions local_opt;
  local_opt.mode = GlobalizerOptions::Mode::kLocalOnly;
  Globalizer other(&mock2, nullptr, nullptr, local_opt);
  EXPECT_TRUE(other.RestoreCheckpoint(path).IsInvalidArgument());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, RestoreIntoUsedGlobalizerIsFailedPrecondition) {
  const std::string path = TempPath("emd_ckpt_used.bin");
  MockLocalSystem mock({{.phrase = {"coronavirus"}}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());
  Dataset d = FiStream();
  ASSERT_TRUE(g.ProcessBatch(std::span<const AnnotatedTweet>(
                                 d.tweets.data(), d.tweets.size()))
                  .ok());
  EXPECT_TRUE(g.RestoreCheckpoint(path).IsFailedPrecondition());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, CheckpointSaveFaultLeavesPreviousCheckpointIntact) {
  FailpointGuard guard;
  const std::string path = TempPath("emd_ckpt_atomic.bin");
  MockLocalSystem mock({{.phrase = {"coronavirus"}, .require_capitalized = true}});
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  Dataset d = FiStream();
  StreamBatcher batcher(&d, 2);
  ASSERT_TRUE(g.ProcessBatch(batcher.Next()).ok());
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());

  // A crash in the publish step must not clobber the previous checkpoint.
  failpoint::EnableAfter("util.file_io.rename",
                         Status::IoError("crash before rename"));
  ASSERT_TRUE(g.ProcessBatch(batcher.Next()).ok());
  EXPECT_FALSE(g.SaveCheckpoint(path).ok());
  failpoint::DisableAll();

  MockLocalSystem mock2({{.phrase = {"coronavirus"}, .require_capitalized = true}});
  Globalizer restored(&mock2, nullptr, nullptr, opt);
  ASSERT_TRUE(restored.RestoreCheckpoint(path).ok());
  EXPECT_EQ(restored.processed_tweets(), 2u) << "the batch-1 checkpoint survives";
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << "temp file cleaned up";
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Model-file atomicity and checksums.
// ---------------------------------------------------------------------------

TEST(FailureInjectionTest, SaveParamsFaultPreservesOriginalModel) {
  FailpointGuard guard;
  const std::string path = TempPath("emd_atomic_model.bin");
  Mat w(2, 2), grad(2, 2);
  w(0, 0) = 42.f;
  ParamSet params;
  params.Register("w", &w, &grad);
  ASSERT_TRUE(SaveParams(params, path).ok());

  w(0, 0) = -1.f;  // new weights that must NOT reach disk
  failpoint::EnableAfter("util.file_io.rename", Status::IoError("disk full"));
  EXPECT_FALSE(SaveParams(params, path).ok());
  failpoint::DisableAll();

  Mat w2(2, 2), grad2(2, 2);
  ParamSet params2;
  params2.Register("w", &w2, &grad2);
  ASSERT_TRUE(LoadParams(&params2, path).ok());
  EXPECT_EQ(w2(0, 0), 42.f) << "interrupted save left the old model intact";
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, ModelFileBitFlipIsCorruption) {
  const std::string path = TempPath("emd_crc_model.bin");
  Mat w(3, 3), grad(3, 3);
  w(1, 1) = 7.f;
  ParamSet params;
  params.Register("w", &w, &grad);
  ASSERT_TRUE(SaveParams(params, path).ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  std::string corrupted = *content;
  corrupted[corrupted.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteStringToFile(path, corrupted).ok());
  EXPECT_TRUE(LoadParams(&params, path).IsCorruption());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, SerializeFailpointsPropagate) {
  FailpointGuard guard;
  const std::string path = TempPath("emd_fp_model.bin");
  Mat w(1, 1), grad(1, 1);
  ParamSet params;
  params.Register("w", &w, &grad);

  failpoint::EnableAfter("nn.serialize.save", Status::IoError("save fp"));
  EXPECT_TRUE(SaveParams(params, path).IsIoError());
  failpoint::DisableAll();

  ASSERT_TRUE(SaveParams(params, path).ok());
  failpoint::EnableAfter("nn.serialize.load", Status::IoError("load fp"));
  EXPECT_TRUE(LoadParams(&params, path).IsIoError());
  failpoint::DisableAll();
  EXPECT_TRUE(LoadParams(&params, path).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace emd
