// Failure-injection tests: corrupted model files, malformed inputs, and
// defensive-check behaviour at API boundaries.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/entity_classifier.h"
#include "core/phrase_embedder.h"
#include "emd/pos_tagger.h"
#include "nn/serialize.h"
#include "stream/conll_io.h"
#include "text/vocabulary.h"
#include "util/file_io.h"

namespace emd {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FailureInjectionTest, LoadParamsRejectsTruncatedFile) {
  Mat w(4, 4), g(4, 4);
  ParamSet params;
  params.Register("w", &w, &g);
  const std::string path = TempPath("emd_trunc.bin");
  ASSERT_TRUE(SaveParams(params, path).ok());
  // Truncate the file in the middle of the payload.
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  ASSERT_TRUE(WriteStringToFile(path, content->substr(0, content->size() / 2)).ok());
  EXPECT_TRUE(LoadParams(&params, path).IsCorruption());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, LoadParamsRejectsGarbageMagic) {
  const std::string path = TempPath("emd_magic.bin");
  ASSERT_TRUE(WriteStringToFile(path, "this is not a model file at all").ok());
  Mat w(1, 1), g(1, 1);
  ParamSet params;
  params.Register("w", &w, &g);
  EXPECT_TRUE(LoadParams(&params, path).IsCorruption());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, LoadParamsMissingFileIsIoError) {
  Mat w(1, 1), g(1, 1);
  ParamSet params;
  params.Register("w", &w, &g);
  EXPECT_TRUE(LoadParams(&params, "/nonexistent/emd/model.bin").IsIoError());
}

TEST(FailureInjectionTest, PhraseEmbedderLoadWrongDims) {
  PhraseEmbedder small(4, 2);
  const std::string path = TempPath("emd_pe_dims.bin");
  ASSERT_TRUE(small.Save(path).ok());
  PhraseEmbedder big(8, 2);
  EXPECT_FALSE(big.Load(path).ok());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, PosTaggerLoadTruncated) {
  const std::string path = TempPath("emd_pos_trunc.model");
  ASSERT_TRUE(WriteStringToFile(path, "5\nw=only one feature line").ok());
  PosTagger tagger;
  EXPECT_FALSE(tagger.Load(path).ok());
  std::filesystem::remove(path);
}

TEST(FailureInjectionTest, VocabularyCorruptHeaders) {
  EXPECT_TRUE(Vocabulary::Deserialize("vocab notanumber\n").status().IsCorruption() ||
              !Vocabulary::Deserialize("vocab notanumber\n").ok());
  EXPECT_FALSE(Vocabulary::Deserialize("vocab 99\n<pad>\n<unk>\n").ok())
      << "declared size larger than payload";
  EXPECT_FALSE(Vocabulary::Deserialize("vocab 3\nwrong\n<unk>\nx\n").ok())
      << "reserved tokens missing";
}

TEST(FailureInjectionTest, ConllParserReportsLineNumbers) {
  const std::string bad = "good\tO\nbadline\n\n";
  auto r = DatasetFromConll(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().message();
}

TEST(FailureInjectionTest, ConllIgnoresCrLf) {
  auto r = DatasetFromConll("Andy\tB\r\nsays\tO\r\n\r\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->tweets[0].tokens[0].text, "Andy");
}

TEST(FailureInjectionDeathTest, MatShapeChecksAbort) {
  Mat a(2, 2), b(3, 3);
  EXPECT_DEATH(a.Add(b), "check failed");
  EXPECT_DEATH(MatMul(a, b), "check failed");
  EXPECT_DEATH(a.at(5, 0), "check failed");
}

TEST(FailureInjectionDeathTest, CandidateBaseUnknownIdAborts) {
  CandidateBase base;
  EXPECT_DEATH(base.at(3), "check failed");
}

TEST(FailureInjectionDeathTest, ResultValueOnErrorAborts) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_DEATH((void)r.value(), "Result::value");
}

TEST(FailureInjectionTest, ClassifierSaveToUnwritablePath) {
  EntityClassifier clf({.input_dim = 7});
  EXPECT_TRUE(clf.Save("/nonexistent/dir/model.bin").IsIoError());
}

}  // namespace
}  // namespace emd
