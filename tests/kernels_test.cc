// Scalar-vs-SIMD parity property tests for the compute-kernel layer
// (nn/kernels). Every kernel is run through both backends over odd,
// cache-unfriendly shapes and asserted to agree within 1e-5 max-abs
// divergence — the contract DESIGN.md §"Kernel dispatch" documents. When the
// binary lacks an AVX2 build or the CPU lacks AVX2+FMA the parity half is
// skipped and only the scalar invariants run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

#include "nn/activations.h"
#include "nn/kernels/kernels.h"
#include "nn/matrix.h"
#include "util/cpuid.h"
#include "util/rng.h"

namespace emd {
namespace {

using kernels::Avx2Kernels;
using kernels::KernelBackend;
using kernels::Kernels;
using kernels::ScalarKernels;

constexpr float kTol = 1e-5f;

/// The SIMD backend to compare against, or nullptr (=> parity is vacuous on
/// this host; the scalar invariants still run).
const KernelBackend* SimdBackend() {
  const KernelBackend* avx2 = Avx2Kernels();
  return (avx2 != nullptr && CpuHasAvx2Fma()) ? avx2 : nullptr;
}

std::vector<float> GaussianVec(int n, float scale, uint64_t seed) {
  Rng rng(seed);
  Mat m(1, n);
  m.InitGaussian(&rng, scale);
  return std::vector<float>(m.data(), m.data() + n);
}

float MaxAbsDiff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  float d = 0.f;
  for (size_t i = 0; i < a.size(); ++i) d = std::max(d, std::fabs(a[i] - b[i]));
  return d;
}

// Odd GEMM shapes (m, k, n): unit, sub-vector-width, exact-width, width+tail,
// prime-heavy, square, and large-with-ragged-tails.
struct GemmShape {
  int m, k, n;
};
const GemmShape kGemmShapes[] = {{1, 1, 1},    {3, 7, 5},     {2, 8, 16},
                                 {5, 16, 33},  {17, 31, 13},  {64, 64, 64},
                                 {255, 257, 63}};

const int kVecLens[] = {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 255, 257};

TEST(KernelDispatchTest, DispatchReturnsKnownBackend) {
  const KernelBackend& k = Kernels();
  EXPECT_TRUE(std::string(k.name) == "scalar" || std::string(k.name) == "avx2");
  // The dispatched choice is a process-lifetime constant.
  EXPECT_EQ(&Kernels(), &k);
}

TEST(KernelDispatchTest, ForceScalarEnvSelectsScalar) {
  // Must run before anything in this process touches Kernels(): under ctest
  // each TEST is its own process, so setting the env here is effective. The
  // legacy knob only applies while EMD_BACKEND is unset.
  unsetenv("EMD_BACKEND");
  setenv("EMD_FORCE_SCALAR", "1", /*overwrite=*/1);
  EXPECT_TRUE(kernels::ForceScalar());
  EXPECT_STREQ(Kernels().name, "scalar");
}

TEST(KernelDispatchTest, BackendEnvScalarSelectsScalar) {
  setenv("EMD_BACKEND", "scalar", /*overwrite=*/1);
  EXPECT_EQ(kernels::SelectedBackend(), kernels::BackendSelect::kScalar);
  EXPECT_FALSE(kernels::Int8Enabled());
  EXPECT_STREQ(Kernels().name, "scalar");
  EXPECT_STREQ(kernels::BackendName(), "scalar");
}

TEST(KernelDispatchTest, BackendEnvOverridesLegacyForceScalar) {
  // EMD_BACKEND wins over the superseded EMD_FORCE_SCALAR knob.
  setenv("EMD_FORCE_SCALAR", "1", /*overwrite=*/1);
  setenv("EMD_BACKEND", "auto", /*overwrite=*/1);
  EXPECT_EQ(kernels::SelectedBackend(), kernels::BackendSelect::kAuto);
  EXPECT_FALSE(kernels::Int8Enabled());
}

TEST(KernelDispatchTest, BackendEnvInt8EnablesQuantizedInference) {
  setenv("EMD_BACKEND", "int8", /*overwrite=*/1);
  EXPECT_EQ(kernels::SelectedBackend(), kernels::BackendSelect::kInt8);
  EXPECT_TRUE(kernels::Int8Enabled());
  // The fp32 table still resolves (int8 covers the GEMM layers only), but
  // the reported backend is the quantized one.
  EXPECT_TRUE(std::string(Kernels().name) == "scalar" ||
              std::string(Kernels().name) == "avx2");
  EXPECT_STREQ(kernels::BackendName(), "int8");
}

TEST(KernelDispatchTest, BackendEnvUnknownFallsBackToAuto) {
  setenv("EMD_BACKEND", "tpu", /*overwrite=*/1);
  EXPECT_EQ(kernels::SelectedBackend(), kernels::BackendSelect::kAuto);
  EXPECT_FALSE(kernels::Int8Enabled());
}

TEST(KernelParityTest, MatMul) {
  const KernelBackend* simd = SimdBackend();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD backend on this host";
  for (const GemmShape& s : kGemmShapes) {
    const auto a = GaussianVec(s.m * s.k, 0.1f, 11 + s.m);
    const auto b = GaussianVec(s.k * s.n, 0.1f, 13 + s.n);
    std::vector<float> c_ref(s.m * s.n, -7.f), c_simd(s.m * s.n, 7.f);
    ScalarKernels().matmul(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
    simd->matmul(a.data(), b.data(), c_simd.data(), s.m, s.k, s.n);
    EXPECT_LE(MaxAbsDiff(c_ref, c_simd), kTol)
        << "matmul " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(KernelParityTest, MatMulBT) {
  const KernelBackend* simd = SimdBackend();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD backend on this host";
  for (const GemmShape& s : kGemmShapes) {
    const auto a = GaussianVec(s.m * s.k, 0.1f, 17 + s.m);
    const auto b = GaussianVec(s.n * s.k, 0.1f, 19 + s.n);  // B is [n, k]
    std::vector<float> c_ref(s.m * s.n, -7.f), c_simd(s.m * s.n, 7.f);
    ScalarKernels().matmul_bt(a.data(), b.data(), c_ref.data(), s.m, s.k, s.n);
    simd->matmul_bt(a.data(), b.data(), c_simd.data(), s.m, s.k, s.n);
    EXPECT_LE(MaxAbsDiff(c_ref, c_simd), kTol)
        << "matmul_bt " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(KernelParityTest, MatMulAT) {
  const KernelBackend* simd = SimdBackend();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD backend on this host";
  for (const GemmShape& s : kGemmShapes) {
    const auto a = GaussianVec(s.k * s.m, 0.1f, 23 + s.m);  // A is [k, m]
    const auto b = GaussianVec(s.k * s.n, 0.1f, 29 + s.n);
    std::vector<float> c_ref(s.m * s.n, -7.f), c_simd(s.m * s.n, 7.f);
    ScalarKernels().matmul_at(a.data(), b.data(), c_ref.data(), s.k, s.m, s.n);
    simd->matmul_at(a.data(), b.data(), c_simd.data(), s.k, s.m, s.n);
    EXPECT_LE(MaxAbsDiff(c_ref, c_simd), kTol)
        << "matmul_at " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(KernelParityTest, Blas1) {
  const KernelBackend* simd = SimdBackend();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD backend on this host";
  for (int n : kVecLens) {
    const auto x = GaussianVec(n, 1.f, 31 + n);
    const auto y0 = GaussianVec(n, 1.f, 37 + n);

    const float dot_ref = ScalarKernels().dot(x.data(), y0.data(), n);
    const float dot_simd = simd->dot(x.data(), y0.data(), n);
    EXPECT_NEAR(dot_ref, dot_simd, kTol * std::max(1, n)) << "dot n=" << n;

    std::vector<float> ya = y0, yb = y0;
    ScalarKernels().axpy(0.37f, x.data(), ya.data(), n);
    simd->axpy(0.37f, x.data(), yb.data(), n);
    EXPECT_LE(MaxAbsDiff(ya, yb), kTol) << "axpy n=" << n;

    std::vector<float> sa(n), sb(n);
    ScalarKernels().vadd(x.data(), y0.data(), sa.data(), n);
    simd->vadd(x.data(), y0.data(), sb.data(), n);
    EXPECT_LE(MaxAbsDiff(sa, sb), kTol) << "vadd n=" << n;
    // Aliased out == x must also hold (the documented contract).
    std::vector<float> alias = x;
    simd->vadd(alias.data(), y0.data(), alias.data(), n);
    EXPECT_LE(MaxAbsDiff(alias, sb), kTol) << "vadd aliased n=" << n;

    std::vector<float> va = x, vb = x;
    ScalarKernels().vscale(-1.25f, va.data(), n);
    simd->vscale(-1.25f, vb.data(), n);
    EXPECT_LE(MaxAbsDiff(va, vb), kTol) << "vscale n=" << n;
  }
}

// Activation inputs: a uniform sweep of [-10, 10] plus hand-picked edge
// values (zero, denormal-adjacent, saturation range).
std::vector<float> ActivationInputs(int n, uint64_t seed) {
  std::vector<float> x = GaussianVec(n, 4.f, seed);
  const float edges[] = {0.f,   -0.f,  1e-8f, -1e-8f, 1.f,   -1.f,
                         10.f,  -10.f, 20.f,  -20.f,  88.f,  -88.f,
                         100.f, -100.f};
  for (size_t i = 0; i < std::min<size_t>(x.size(), std::size(edges)); ++i) {
    x[i] = edges[i];
  }
  return x;
}

TEST(KernelParityTest, Activations) {
  const KernelBackend* simd = SimdBackend();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD backend on this host";
  for (int n : kVecLens) {
    const auto x = ActivationInputs(n, 41 + n);
    std::vector<float> ya(n), yb(n), ma(n), mb(n);

    ScalarKernels().relu(x.data(), ya.data(), ma.data(), n);
    simd->relu(x.data(), yb.data(), mb.data(), n);
    EXPECT_LE(MaxAbsDiff(ya, yb), 0.f) << "relu n=" << n;  // exact
    EXPECT_LE(MaxAbsDiff(ma, mb), 0.f) << "relu mask n=" << n;
    ScalarKernels().relu(x.data(), ya.data(), nullptr, n);
    simd->relu(x.data(), yb.data(), nullptr, n);
    EXPECT_LE(MaxAbsDiff(ya, yb), 0.f) << "maskless relu n=" << n;

    ScalarKernels().gelu(x.data(), ya.data(), n);
    simd->gelu(x.data(), yb.data(), n);
    EXPECT_LE(MaxAbsDiff(ya, yb), kTol) << "gelu n=" << n;

    ScalarKernels().vtanh(x.data(), ya.data(), n);
    simd->vtanh(x.data(), yb.data(), n);
    EXPECT_LE(MaxAbsDiff(ya, yb), kTol) << "tanh n=" << n;

    ScalarKernels().vsigmoid(x.data(), ya.data(), n);
    simd->vsigmoid(x.data(), yb.data(), n);
    EXPECT_LE(MaxAbsDiff(ya, yb), kTol) << "sigmoid n=" << n;

    // In-place (y aliasing x) must match the out-of-place result exactly.
    simd->vtanh(x.data(), yb.data(), n);
    std::vector<float> alias = x;
    simd->vtanh(alias.data(), alias.data(), n);
    EXPECT_LE(MaxAbsDiff(alias, yb), 0.f) << "tanh aliased n=" << n;
  }
}

TEST(KernelParityTest, SoftmaxRows) {
  const KernelBackend* simd = SimdBackend();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD backend on this host";
  const GemmShape shapes[] = {{1, 0, 1}, {3, 0, 7}, {17, 0, 31}, {64, 0, 255}};
  for (const GemmShape& s : shapes) {
    auto a = GaussianVec(s.m * s.n, 3.f, 43 + s.m);
    auto b = a;
    ScalarKernels().softmax_rows(a.data(), s.m, s.n);
    simd->softmax_rows(b.data(), s.m, s.n);
    EXPECT_LE(MaxAbsDiff(a, b), kTol) << "softmax " << s.m << "x" << s.n;
    for (int r = 0; r < s.m; ++r) {
      double sum = 0;
      for (int j = 0; j < s.n; ++j) sum += b[r * s.n + j];
      EXPECT_NEAR(sum, 1.0, 1e-4) << "softmax row " << r;
    }
  }
}

TEST(KernelParityTest, LayerNorm) {
  const KernelBackend* simd = SimdBackend();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD backend on this host";
  const GemmShape shapes[] = {{1, 0, 5}, {3, 0, 7}, {17, 0, 31}, {9, 0, 257}};
  const float eps = 1e-5f;
  for (const GemmShape& s : shapes) {
    const auto x = GaussianVec(s.m * s.n, 1.f, 47 + s.n);
    const auto gamma = GaussianVec(s.n, 1.f, 53);
    const auto beta = GaussianVec(s.n, 1.f, 59);
    std::vector<float> ya(s.m * s.n), yb(s.m * s.n);
    std::vector<float> xa(s.m * s.n), xb(s.m * s.n);
    std::vector<float> ia(s.m), ib(s.m);
    ScalarKernels().layer_norm(x.data(), gamma.data(), beta.data(), eps, s.m,
                               s.n, ya.data(), xa.data(), ia.data());
    simd->layer_norm(x.data(), gamma.data(), beta.data(), eps, s.m, s.n,
                     yb.data(), xb.data(), ib.data());
    EXPECT_LE(MaxAbsDiff(ya, yb), kTol) << "layer_norm y " << s.m << "x" << s.n;
    EXPECT_LE(MaxAbsDiff(xa, xb), kTol) << "layer_norm xhat " << s.m << "x"
                                        << s.n;
    EXPECT_LE(MaxAbsDiff(ia, ib), kTol) << "layer_norm inv_std " << s.m << "x"
                                        << s.n;
  }
}

TEST(KernelParityTest, LogSumExp) {
  const KernelBackend* simd = SimdBackend();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD backend on this host";
  for (int n : kVecLens) {
    const auto x = ActivationInputs(n, 61 + n);
    const double ref = ScalarKernels().logsumexp(x.data(), n);
    const double got = simd->logsumexp(x.data(), n);
    EXPECT_NEAR(ref, got, kTol) << "logsumexp n=" << n;
  }
}

TEST(KernelParityTest, SimdIsDeterministic) {
  const KernelBackend* simd = SimdBackend();
  if (simd == nullptr) GTEST_SKIP() << "no SIMD backend on this host";
  const GemmShape s = {17, 31, 13};
  const auto a = GaussianVec(s.m * s.k, 0.1f, 67);
  const auto b = GaussianVec(s.k * s.n, 0.1f, 71);
  std::vector<float> c1(s.m * s.n), c2(s.m * s.n);
  simd->matmul(a.data(), b.data(), c1.data(), s.m, s.k, s.n);
  simd->matmul(a.data(), b.data(), c2.data(), s.m, s.k, s.n);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), sizeof(float) * c1.size()));
}

// Finite-difference gradient check of the GeLU layer added alongside the
// kernel table. Analytic backward vs (f(x+h)-f(x-h))/2h on a weighted-sum
// loss; the small-magnitude guard mirrors nn_grad_test.
TEST(GeluLayerTest, GradientMatchesFiniteDifference) {
  const int n = 9;
  Mat x(1, n), w(1, n);
  Rng rng(73);
  x.InitGaussian(&rng, 1.5f);
  w.InitGaussian(&rng, 1.f);

  GeluLayer gelu;
  auto loss = [&](const Mat& in) {
    GeluLayer fresh;
    const Mat y = fresh.Forward(in);
    double s = 0;
    for (int j = 0; j < n; ++j) s += double(y(0, j)) * w(0, j);
    return s;
  };

  gelu.Forward(x);
  const Mat dx = gelu.Backward(w);

  const double eps = 1e-3;
  for (int j = 0; j < n; ++j) {
    Mat xp = x, xm = x;
    xp(0, j) += static_cast<float>(eps);
    xm(0, j) -= static_cast<float>(eps);
    const double numeric = (loss(xp) - loss(xm)) / (2 * eps);
    const double analytic = dx(0, j);
    if (std::fabs(analytic) < 5e-5 && std::fabs(numeric) < 5e-5) continue;
    const double denom =
        std::max({std::fabs(analytic), std::fabs(numeric), 1e-4});
    EXPECT_LT(std::fabs(analytic - numeric) / denom, 2e-2)
        << "gelu dx[" << j << "]: analytic " << analytic << " vs numeric "
        << numeric;
  }
}

// The nn-layer entry points must produce identical results through Mat ops
// regardless of backend choice already covered above; this sanity-checks the
// wiring end to end: MatMulInto through the dispatched backend equals the
// scalar kernel on the same inputs within tolerance.
TEST(KernelWiringTest, MatMulIntoUsesDispatchedBackend) {
  Rng rng(79);
  Mat a(5, 16), b(16, 33), c;
  a.InitGaussian(&rng, 0.1f);
  b.InitGaussian(&rng, 0.1f);
  MatMulInto(a, b, &c);
  std::vector<float> ref(5 * 33);
  ScalarKernels().matmul(a.data(), b.data(), ref.data(), 5, 16, 33);
  float d = 0.f;
  for (size_t i = 0; i < ref.size(); ++i) {
    d = std::max(d, std::fabs(ref[i] - c.data()[i]));
  }
  EXPECT_LE(d, kTol);
}

}  // namespace
}  // namespace emd
