// SkipGram pretraining tests: distributional similarity emerges, tables
// initialize embedding layers, and degenerate inputs behave.

#include <gtest/gtest.h>

#include "nn/word2vec.h"
#include "stream/datasets.h"
#include "util/string_util.h"

namespace emd {
namespace {

// Synthetic corpus with two interchange classes: {red, blue} share contexts,
// {cat, dog} share contexts; the classes never mix.
std::vector<std::vector<std::string>> TwoClassCorpus(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::string>> out;
  const std::vector<std::string> colors = {"red", "blue"};
  const std::vector<std::string> animals = {"cat", "dog"};
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.5)) {
      out.push_back({"the", colors[rng.NextU64(2)], "paint", "dried", "slowly"});
    } else {
      out.push_back({"my", animals[rng.NextU64(2)], "chased", "the", "ball"});
    }
  }
  return out;
}

TEST(SkipGramTest, LearnsDistributionalSimilarity) {
  SkipGramOptions opt;
  opt.dim = 16;
  opt.epochs = 8;
  SkipGram sg(opt);
  sg.Train(TwoClassCorpus(800, 3), /*min_count=*/2);
  ASSERT_TRUE(sg.trained());
  // Same-class pairs more similar than cross-class pairs.
  EXPECT_GT(sg.Similarity("red", "blue"), sg.Similarity("red", "cat"));
  EXPECT_GT(sg.Similarity("cat", "dog"), sg.Similarity("dog", "blue"));
}

TEST(SkipGramTest, InitializeTableCopiesKnownRows) {
  SkipGramOptions opt;
  opt.dim = 8;
  opt.epochs = 2;
  SkipGram sg(opt);
  sg.Train(TwoClassCorpus(100, 4), 2);

  Vocabulary dest;
  dest.Add("red");
  dest.Add("unseen_word");
  Mat table(dest.size(), 8);
  const int rows = sg.InitializeTable(dest, &table);
  EXPECT_EQ(rows, 1);
  Mat red = sg.Embed("red");
  for (int j = 0; j < 8; ++j) {
    EXPECT_FLOAT_EQ(table(dest.Id("red"), j), red(0, j));
  }
  // The unseen word's row stays untouched (zero).
  for (int j = 0; j < 8; ++j) {
    EXPECT_FLOAT_EQ(table(dest.Id("unseen_word"), j), 0.f);
  }
}

TEST(SkipGramTest, TrainsOnGeneratedTweets) {
  EntityCatalogOptions copt;
  copt.entities_per_topic = 60;
  copt.seed = 7;
  EntityCatalog catalog = EntityCatalog::Build(copt);
  Dataset corpus = BuildTrainingCorpus(catalog, 300, 9);
  std::vector<std::vector<std::string>> sentences;
  for (const auto& tweet : corpus.tweets) {
    std::vector<std::string> sent;
    for (const auto& tok : tweet.tokens) sent.push_back(ToLowerAscii(tok.text));
    sentences.push_back(std::move(sent));
  }
  SkipGramOptions opt;
  opt.dim = 12;
  opt.epochs = 1;
  SkipGram sg(opt);
  sg.Train(sentences, 2);
  EXPECT_TRUE(sg.trained());
  EXPECT_GT(sg.vocab().size(), 50);
}

TEST(SkipGramTest, EmptyishCorpus) {
  SkipGram sg;
  sg.Train({{"only"}, {"tiny"}}, /*min_count=*/1);
  EXPECT_TRUE(sg.trained());
  // Unknown word maps to the unk row without crashing.
  Mat e = sg.Embed("missing");
  EXPECT_EQ(e.cols(), 50);
}

}  // namespace
}  // namespace emd
