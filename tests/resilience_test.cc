// Resilience runtime tests: retry backoff schedules on a fake clock,
// circuit-breaker state transitions, ingest-queue backpressure and shedding,
// dead-letter queue round-trips with corruption resync, and the full
// deadline → retry → breaker → fallback → DLQ ladder through the Globalizer,
// driven via the failpoint registry.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/globalizer.h"
#include "mock_local_system.h"
#include "stream/dead_letter.h"
#include "stream/ingest_queue.h"
#include "text/tweet_tokenizer.h"
#include "util/circuit_breaker.h"
#include "util/deadline.h"
#include "util/failpoint.h"
#include "util/file_io.h"
#include "util/retry.h"
#include "util/rng.h"

namespace emd {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Disarms every failpoint on scope exit so no test leaks armed points.
struct FailpointGuard {
  FailpointGuard() { failpoint::DisableAll(); }
  ~FailpointGuard() { failpoint::DisableAll(); }
};

AnnotatedTweet MakeTweet(long id, const std::string& text,
                         std::vector<TokenSpan> gold_spans = {}) {
  AnnotatedTweet t;
  t.tweet_id = id;
  t.sentence_id = static_cast<int>(id) * 10;
  t.topic_id = 7;
  t.text = text;
  t.tokens = TweetTokenizer().Tokenize(text);
  for (const auto& s : gold_spans) t.gold.push_back({s, static_cast<int>(s.begin)});
  return t;
}

// ---------------------------------------------------------------- Backoff --

TEST(BackoffTest, FirstDelayIsExactlyInitial) {
  RetryPolicy policy;
  policy.initial_backoff_nanos = 3 * kMillisecond;
  Rng rng(1);
  Backoff backoff(policy, &rng);
  EXPECT_EQ(backoff.NextDelayNanos(), 3 * kMillisecond);
}

TEST(BackoffTest, DelaysStayWithinDecorrelatedJitterBounds) {
  RetryPolicy policy;
  policy.initial_backoff_nanos = 2 * kMillisecond;
  policy.max_backoff_nanos = 50 * kMillisecond;
  Rng rng(42);
  Backoff backoff(policy, &rng);
  uint64_t prev = backoff.NextDelayNanos();
  for (int i = 0; i < 200; ++i) {
    const uint64_t hi =
        std::min<uint64_t>(policy.max_backoff_nanos, prev * 3);
    const uint64_t next = backoff.NextDelayNanos();
    EXPECT_GE(next, policy.initial_backoff_nanos) << "iteration " << i;
    EXPECT_LE(next, hi) << "iteration " << i;
    EXPECT_LE(next, policy.max_backoff_nanos) << "iteration " << i;
    prev = next;
  }
}

TEST(BackoffTest, SeededScheduleIsDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_nanos = 1 * kMillisecond;
  Rng rng_a(0xBEEF), rng_b(0xBEEF);
  Backoff a(policy, &rng_a), b(policy, &rng_b);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextDelayNanos(), b.NextDelayNanos()) << "iteration " << i;
  }
}

TEST(BackoffTest, IsTransientClassifiesCodes) {
  EXPECT_TRUE(IsTransient(Status::IoError("disk")));
  EXPECT_TRUE(IsTransient(Status::Internal("wedged")));
  EXPECT_TRUE(IsTransient(Status::DeadlineExceeded("slow")));
  EXPECT_TRUE(IsTransient(Status::ResourceExhausted("full")));
  EXPECT_TRUE(IsTransient(Status::Unavailable("open")));
  EXPECT_FALSE(IsTransient(Status::OK()));
  EXPECT_FALSE(IsTransient(Status::InvalidArgument("bad request")));
  EXPECT_FALSE(IsTransient(Status::Corruption("bad bytes")));
  EXPECT_FALSE(IsTransient(Status::NotFound("gone")));
}

// ----------------------------------------------------------- RunWithRetry --

TEST(RunWithRetryTest, RetriesTransientUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  FakeClock clock;
  Rng rng(1);
  RetryStats stats;
  int calls = 0;
  const Status st = RunWithRetry(
      policy, &clock, &rng,
      [&]() -> Status {
        return ++calls < 3 ? Status::IoError("flaky") : Status::OK();
      },
      &stats);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_GT(stats.backoff_nanos, 0u);
  EXPECT_EQ(clock.now(), stats.backoff_nanos) << "all sleeps on the clock";
}

TEST(RunWithRetryTest, PermanentErrorIsNotRetried) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  FakeClock clock;
  Rng rng(1);
  RetryStats stats;
  int calls = 0;
  const Status st = RunWithRetry(
      policy, &clock, &rng,
      [&]() -> Status {
        ++calls;
        return Status::InvalidArgument("never retry me");
      },
      &stats);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(clock.now(), 0u);
}

TEST(RunWithRetryTest, ExhaustedAttemptsReturnLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  FakeClock clock;
  Rng rng(1);
  RetryStats stats;
  const Status st = RunWithRetry(
      policy, &clock, &rng, [&]() -> Status { return Status::Internal("down"); },
      &stats);
  EXPECT_TRUE(st.IsInternal());
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
}

TEST(RunWithRetryTest, SlowSuccessOverrunsAttemptDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.attempt_deadline_nanos = 10 * kMillisecond;
  FakeClock clock;
  Rng rng(1);
  RetryStats stats;
  int calls = 0;
  const Status st = RunWithRetry(
      policy, &clock, &rng,
      [&]() -> Status {
        // First attempt succeeds but takes 20ms — a blown stage budget is a
        // transient DeadlineExceeded, so the fast second attempt wins.
        if (++calls == 1) clock.Advance(20 * kMillisecond);
        return Status::OK();
      },
      &stats);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(stats.retries, 1);
}

TEST(RunWithRetryTest, WorksWithResultValues) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  FakeClock clock;
  Rng rng(1);
  int calls = 0;
  Result<int> r = RunWithRetry(policy, &clock, &rng, [&]() -> Result<int> {
    if (++calls == 1) return Status::Unavailable("warming up");
    return 41 + 1;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(calls, 2);
}

// --------------------------------------------------------- CircuitBreaker --

CircuitBreakerOptions SmallBreaker() {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_cooldown_nanos = 100 * kMillisecond;
  options.half_open_successes = 2;
  options.name = "test";
  return options;
}

TEST(CircuitBreakerTest, TripsOnlyAtConsecutiveFailureThreshold) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), &clock);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // A success resets the consecutive count.
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, OpenRejectsUntilCooldownThenHalfOpens) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), &clock);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.rejected(), 2);
  clock.Advance(100 * kMillisecond);
  EXPECT_TRUE(breaker.AllowRequest()) << "cooldown elapsed: admit a probe";
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, HalfOpenSuccessesClose) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), &clock);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.Advance(100 * kMillisecond);
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen)
      << "one probe success is not yet a recovery";
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.recoveries(), 1);
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReTrips) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), &clock);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.Advance(100 * kMillisecond);
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_FALSE(breaker.AllowRequest()) << "cooldown restarts after a re-trip";
}

// ------------------------------------------------------------ IngestQueue --

TEST(IngestQueueTest, PushAppliesBackpressureWhenFull) {
  IngestQueue queue({.capacity = 2});
  EXPECT_TRUE(queue.Push(MakeTweet(1, "a")).ok());
  EXPECT_TRUE(queue.Push(MakeTweet(2, "b")).ok());
  const Status st = queue.Push(MakeTweet(3, "c"));
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_TRUE(queue.full());
  EXPECT_EQ(queue.stats().accepted, 2u);
  EXPECT_EQ(queue.stats().rejected, 1u);
  EXPECT_EQ(queue.stats().shed, 0u);
}

TEST(IngestQueueTest, PushOrShedCountsSheddedNewest) {
  IngestQueue queue({.capacity = 1});
  EXPECT_TRUE(queue.PushOrShed(MakeTweet(1, "kept")));
  EXPECT_FALSE(queue.PushOrShed(MakeTweet(2, "shed")));
  EXPECT_EQ(queue.stats().shed, 1u);
  const std::vector<AnnotatedTweet> drained = queue.PopBatch(10);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].tweet_id, 1) << "reject-newest keeps the oldest tweet";
}

TEST(IngestQueueTest, PopBatchIsFifoAndTracksWatermark) {
  IngestQueue queue({.capacity = 8});
  for (long id = 1; id <= 5; ++id) {
    ASSERT_TRUE(queue.Push(MakeTweet(id, "t")).ok());
  }
  EXPECT_EQ(queue.stats().high_watermark, 5u);
  std::vector<AnnotatedTweet> first = queue.PopBatch(3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].tweet_id, 1);
  EXPECT_EQ(first[2].tweet_id, 3);
  std::vector<AnnotatedTweet> rest = queue.PopBatch(10);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[1].tweet_id, 5);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.stats().popped, 5u);
  EXPECT_EQ(queue.stats().high_watermark, 5u);
}

// -------------------------------------------------------- DeadLetterQueue --

TEST(DeadLetterQueueTest, AppendReadAllRoundTrips) {
  const std::string path = TempPath("emd_dlq_roundtrip.dlq");
  std::filesystem::remove(path);
  {
    auto dlq = DeadLetterQueue::Open(path);
    ASSERT_TRUE(dlq.ok());
    ASSERT_TRUE(
        dlq->Append(MakeTweet(11, "the Coronavirus keeps spreading", {{1, 2}}),
                    Status::Internal("tagger wedged"))
            .ok());
    ASSERT_TRUE(dlq->Append(MakeTweet(12, "worried about cases"),
                            Status::DeadlineExceeded("too slow"))
                    .ok());
    EXPECT_EQ(dlq->appended(), 2u);
  }
  auto report = DeadLetterQueue::ReadAll(path);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->corrupt_regions_skipped, 0);
  ASSERT_EQ(report->entries.size(), 2u);
  const AnnotatedTweet& t = report->entries[0].tweet;
  EXPECT_EQ(t.tweet_id, 11);
  EXPECT_EQ(t.sentence_id, 110);
  EXPECT_EQ(t.topic_id, 7);
  EXPECT_EQ(t.text, "the Coronavirus keeps spreading");
  ASSERT_EQ(t.tokens.size(), 4u);
  EXPECT_EQ(t.tokens[1].text, "Coronavirus");
  EXPECT_EQ(t.tokens[1].begin, 4u);
  ASSERT_EQ(t.gold.size(), 1u);
  EXPECT_EQ(t.gold[0].span, (TokenSpan{1, 2}));
  EXPECT_NE(report->entries[0].reason.find("tagger wedged"), std::string::npos);
  EXPECT_NE(report->entries[1].reason.find("DeadlineExceeded"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST(DeadLetterQueueTest, CorruptMiddleRecordIsResyncedPast) {
  const std::string path = TempPath("emd_dlq_corrupt.dlq");
  std::filesystem::remove(path);
  size_t first_record_end = 0;
  {
    auto dlq = DeadLetterQueue::Open(path);
    ASSERT_TRUE(dlq.ok());
    ASSERT_TRUE(dlq->Append(MakeTweet(1, "first tweet"), Status::Internal("x")).ok());
    first_record_end = std::filesystem::file_size(path);
    ASSERT_TRUE(dlq->Append(MakeTweet(2, "second tweet"), Status::Internal("x")).ok());
    ASSERT_TRUE(dlq->Append(MakeTweet(3, "third tweet"), Status::Internal("x")).ok());
  }
  // Flip a byte inside the second record's payload; its CRC check fails and
  // the reader must resync to the third record's magic.
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  std::string bytes = *content;
  bytes[first_record_end + 9] ^= 0x5A;
  ASSERT_TRUE(WriteStringToFile(path, bytes).ok());

  auto report = DeadLetterQueue::ReadAll(path);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->entries.size(), 2u);
  EXPECT_EQ(report->entries[0].tweet.tweet_id, 1);
  EXPECT_EQ(report->entries[1].tweet.tweet_id, 3);
  EXPECT_EQ(report->corrupt_regions_skipped, 1);
  std::filesystem::remove(path);
}

TEST(DeadLetterQueueTest, TornTailIsCountedNotFatal) {
  const std::string path = TempPath("emd_dlq_torn.dlq");
  std::filesystem::remove(path);
  {
    auto dlq = DeadLetterQueue::Open(path);
    ASSERT_TRUE(dlq.ok());
    ASSERT_TRUE(dlq->Append(MakeTweet(1, "whole record"), Status::Internal("x")).ok());
    ASSERT_TRUE(dlq->Append(MakeTweet(2, "torn record"), Status::Internal("x")).ok());
  }
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  ASSERT_TRUE(
      WriteStringToFile(path, content->substr(0, content->size() - 6)).ok());
  auto report = DeadLetterQueue::ReadAll(path);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->entries.size(), 1u);
  EXPECT_EQ(report->entries[0].tweet.tweet_id, 1);
  EXPECT_EQ(report->corrupt_regions_skipped, 1);
  std::filesystem::remove(path);
}

TEST(DeadLetterQueueTest, MissingFileReadsEmptyAndTruncateEmpties) {
  const std::string path = TempPath("emd_dlq_missing.dlq");
  std::filesystem::remove(path);
  auto report = DeadLetterQueue::ReadAll(path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->entries.empty());

  {
    auto dlq = DeadLetterQueue::Open(path);
    ASSERT_TRUE(dlq.ok());
    ASSERT_TRUE(dlq->Append(MakeTweet(1, "x"), Status::Internal("x")).ok());
  }
  ASSERT_TRUE(DeadLetterQueue::Truncate(path).ok());
  report = DeadLetterQueue::ReadAll(path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->entries.empty());
  std::filesystem::remove(path);
}

TEST(DeadLetterQueueTest, AppendFailpointSurfacesError) {
  FailpointGuard guard;
  const std::string path = TempPath("emd_dlq_failpoint.dlq");
  std::filesystem::remove(path);
  auto dlq = DeadLetterQueue::Open(path);
  ASSERT_TRUE(dlq.ok());
  failpoint::EnableAfter("stream.dead_letter.append",
                         Status::IoError("disk full"));
  EXPECT_TRUE(dlq->Append(MakeTweet(1, "x"), Status::Internal("x")).IsIoError());
  std::filesystem::remove(path);
}

// ------------------------------------------------- Globalizer integration --

Dataset SmallStream() {
  Dataset d;
  d.name = "resilience";
  d.tweets = {
      MakeTweet(1, "the Coronavirus keeps spreading", {{1, 2}}),
      MakeTweet(2, "worried about Coronavirus cases", {{2, 3}}),
      MakeTweet(3, "Coronavirus cases rising again", {{0, 1}}),
      MakeTweet(4, "the Coronavirus response was slow", {{1, 2}}),
      MakeTweet(5, "more Coronavirus news tonight", {{1, 2}}),
      MakeTweet(6, "Coronavirus briefing at noon", {{0, 1}}),
  };
  return d;
}

std::vector<MockLocalSystem::Rule> CoronaRules() {
  return {{.phrase = {"coronavirus"}}};
}

TEST(GlobalizerResilienceTest, OptInRetryRecoversTransientFault) {
  FailpointGuard guard;
  // The second tweet's local EMD fails twice, then works: with three
  // attempts the tweet survives instead of quarantining.
  failpoint::EnableAfter("emd.mock.process", Status::Internal("hiccup"),
                         /*skip=*/1, /*max_fires=*/2);
  MockLocalSystem mock(CoronaRules());
  FakeClock clock;
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.resilience.local_emd.max_attempts = 3;
  opt.resilience.clock = &clock;
  Globalizer g(&mock, nullptr, nullptr, opt);
  GlobalizerOutput out = g.Run(SmallStream()).value();

  EXPECT_EQ(out.num_quarantined, 0);
  EXPECT_EQ(out.num_retries, 2);
  EXPECT_EQ(out.mentions[1].size(), 1u) << "the retried tweet kept its mention";
  EXPECT_GT(clock.now(), 0u) << "backoff slept on the injected clock";
}

TEST(GlobalizerResilienceTest, BreakerOpensRoutesToFallbackAndDeadLetters) {
  FailpointGuard guard;
  const std::string dlq_path = TempPath("emd_dlq_breaker.dlq");
  std::filesystem::remove(dlq_path);

  // The primary fails persistently (its own failpoint name); the fallback
  // keeps the default name and stays healthy.
  MockLocalSystem primary(CoronaRules());
  primary.set_process_failpoint("emd.primary.process");
  MockLocalSystem fallback(CoronaRules());
  failpoint::EnableAfter("emd.primary.process",
                         Status::Internal("primary outage"));

  FakeClock clock;
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.resilience.local_emd.max_attempts = 2;
  opt.resilience.breaker.failure_threshold = 2;
  opt.resilience.breaker.name = "emd.primary";
  opt.resilience.clock = &clock;
  Globalizer g(&primary, nullptr, nullptr, opt);
  g.set_fallback_system(&fallback);
  auto dlq = DeadLetterQueue::Open(dlq_path);
  ASSERT_TRUE(dlq.ok());
  g.set_dead_letter_queue(&*dlq);

  const Dataset stream = SmallStream();
  GlobalizerOutput out = g.Run(stream).value();

  // Tweet 1 exhausts retries below the trip threshold: quarantined + DLQ'd.
  // Tweet 2's failure trips the breaker and is served by the fallback, as is
  // every later tweet. Zero tweets lost overall.
  EXPECT_EQ(out.num_quarantined, 1);
  EXPECT_EQ(out.num_dead_lettered, 1);
  EXPECT_EQ(out.num_fallback, 5);
  EXPECT_EQ(out.breaker_trips, 1);
  EXPECT_EQ(g.breaker().state(), CircuitBreaker::State::kOpen);
  ASSERT_EQ(out.mentions.size(), stream.size());
  EXPECT_TRUE(out.mentions[0].empty()) << "quarantined tweet emits nothing";
  for (size_t i = 1; i < out.mentions.size(); ++i) {
    EXPECT_EQ(out.mentions[i].size(), 1u) << "fallback served tweet " << i;
  }

  // Replay closes the loop: with the outage cleared, the dead-lettered tweet
  // reprocesses to exactly what a clean pipeline produces for it.
  failpoint::DisableAll();
  auto report = DeadLetterQueue::ReadAll(dlq_path);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->entries.size(), 1u);
  EXPECT_EQ(report->entries[0].tweet.tweet_id, 1);

  auto run_clean = [&](const std::vector<AnnotatedTweet>& tweets) {
    MockLocalSystem clean(CoronaRules());
    GlobalizerOptions clean_opt;
    clean_opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
    Globalizer clean_g(&clean, nullptr, nullptr, clean_opt);
    Dataset d;
    d.tweets = tweets;
    return clean_g.Run(d).value();
  };
  const GlobalizerOutput replayed = run_clean({report->entries[0].tweet});
  const GlobalizerOutput reference = run_clean({stream.tweets[0]});
  EXPECT_EQ(replayed.mentions, reference.mentions)
      << "replayed output is byte-identical to the clean run";
  std::filesystem::remove(dlq_path);
}

TEST(GlobalizerResilienceTest, HalfOpenProbeRecoversAfterOutageEnds) {
  FailpointGuard guard;
  MockLocalSystem primary(CoronaRules());
  primary.set_process_failpoint("emd.primary.process");
  MockLocalSystem fallback(CoronaRules());
  // Outage covers the first three process calls only (tweets 1 and 2 with
  // one retry each would be 2 calls... keep it simple: 4 fires covers the
  // trip; everything after succeeds).
  failpoint::EnableAfter("emd.primary.process", Status::Internal("outage"),
                         /*skip=*/0, /*max_fires=*/4);

  FakeClock clock;
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.resilience.local_emd.max_attempts = 2;
  opt.resilience.breaker.failure_threshold = 1;
  opt.resilience.breaker.open_cooldown_nanos = 10 * kMillisecond;
  opt.resilience.breaker.half_open_successes = 1;
  opt.resilience.clock = &clock;
  Globalizer g(&primary, nullptr, nullptr, opt);
  g.set_fallback_system(&fallback);

  const Dataset stream = SmallStream();
  // Tweet 1: both attempts fire (2 fires), breaker trips at threshold 1,
  // fallback serves it. Tweets 2-3: breaker open within cooldown → fallback
  // (advance the clock between batches so a probe eventually happens).
  ASSERT_TRUE(g.ProcessBatch({&stream.tweets[0], 1}).ok());
  EXPECT_EQ(g.breaker().state(), CircuitBreaker::State::kOpen);
  ASSERT_TRUE(g.ProcessBatch({&stream.tweets[1], 1}).ok());
  clock.Advance(10 * kMillisecond);
  // Probe admitted; the failpoint still has 2 fires left, so both attempts
  // fail, the breaker re-trips, and the probe tweet falls back.
  ASSERT_TRUE(g.ProcessBatch({&stream.tweets[2], 1}).ok());
  EXPECT_EQ(g.breaker().state(), CircuitBreaker::State::kOpen);
  clock.Advance(10 * kMillisecond);
  // Next probe succeeds (failpoint exhausted): recovery to closed.
  ASSERT_TRUE(g.ProcessBatch({&stream.tweets[3], 1}).ok());
  EXPECT_EQ(g.breaker().state(), CircuitBreaker::State::kClosed);

  GlobalizerOutput out = g.Finalize().value();
  EXPECT_EQ(out.breaker_trips, 2);
  EXPECT_EQ(out.breaker_recoveries, 1);
  EXPECT_EQ(out.num_fallback, 3);
  EXPECT_EQ(out.num_quarantined, 0) << "no tweet was lost during the outage";
}

TEST(GlobalizerResilienceTest, CheckpointV2RoundTripsResilienceCounters) {
  FailpointGuard guard;
  const std::string ckpt = TempPath("emd_resilience.ckpt");
  const std::string dlq_path = TempPath("emd_dlq_ckpt.dlq");
  std::filesystem::remove(ckpt);
  std::filesystem::remove(dlq_path);

  MockLocalSystem primary(CoronaRules());
  primary.set_process_failpoint("emd.primary.process");
  MockLocalSystem fallback(CoronaRules());
  failpoint::EnableAfter("emd.primary.process", Status::Internal("outage"));

  FakeClock clock;
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.resilience.local_emd.max_attempts = 2;
  opt.resilience.breaker.failure_threshold = 2;
  opt.resilience.clock = &clock;
  GlobalizerOutput before;
  {
    Globalizer g(&primary, nullptr, nullptr, opt);
    g.set_fallback_system(&fallback);
    auto dlq = DeadLetterQueue::Open(dlq_path);
    ASSERT_TRUE(dlq.ok());
    g.set_dead_letter_queue(&*dlq);
    const Dataset stream = SmallStream();
    ASSERT_TRUE(g.ProcessBatch(stream.tweets).ok());
    before = g.Finalize().value();
    ASSERT_TRUE(g.SaveCheckpoint(ckpt).ok());
  }
  ASSERT_GT(before.num_retries, 0);
  ASSERT_EQ(before.breaker_trips, 1);

  Globalizer restored(&primary, nullptr, nullptr, opt);
  ASSERT_TRUE(restored.RestoreCheckpoint(ckpt).ok());
  failpoint::DisableAll();
  GlobalizerOutput after = restored.Finalize().value();
  EXPECT_EQ(after.num_retries, before.num_retries);
  EXPECT_EQ(after.num_fallback, before.num_fallback);
  EXPECT_EQ(after.num_dead_lettered, before.num_dead_lettered);
  EXPECT_EQ(after.breaker_trips, before.breaker_trips);
  EXPECT_EQ(after.breaker_recoveries, before.breaker_recoveries);
  EXPECT_EQ(after.num_quarantined, before.num_quarantined);
  EXPECT_EQ(after.mentions, before.mentions);
  std::filesystem::remove(ckpt);
  std::filesystem::remove(dlq_path);
}

// ------------------------------------------------------ no-fallback paths --

TEST(GlobalizerResilienceTest, OpenBreakerWithoutFallbackQuarantines) {
  FailpointGuard guard;
  failpoint::EnableAfter("emd.mock.process", Status::Internal("outage"));
  MockLocalSystem mock(CoronaRules());
  FakeClock clock;
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.resilience.breaker.failure_threshold = 2;
  opt.resilience.clock = &clock;
  Globalizer g(&mock, nullptr, nullptr, opt);
  GlobalizerOutput out = g.Run(SmallStream()).value();

  EXPECT_EQ(out.num_quarantined, 6) << "every tweet quarantines, none lost";
  EXPECT_EQ(out.num_fallback, 0);
  EXPECT_EQ(out.breaker_trips, 1);
  EXPECT_GT(g.breaker().rejected(), 0);
  for (const auto& mentions : out.mentions) EXPECT_TRUE(mentions.empty());
}

}  // namespace
}  // namespace emd
