// Memory-governance tests: CTrie pruning invariants (lookup misses, shared
// prefixes, slot recycling, fresh ids), decayed incremental pooling math and
// its bit-exact-when-off guarantee, score+recency eviction with the
// evicted-label side table, forced-pressure and aborted-eviction failpoints,
// admission-edge shedding under memory pressure, checkpoint v4 round-trips
// after pruning plus the v3 compatibility / version-skew paths, and a
// multi-threaded chaos run (the TSan target: eviction at the batch barrier
// must never race worker-side trie reads).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/entity_classifier.h"
#include "core/globalizer.h"
#include "core/memory_governor.h"
#include "core/phrase_embedder.h"
#include "mock_local_system.h"
#include "net/admission.h"
#include "net/wire.h"
#include "stream/datasets.h"
#include "stream/ingest_queue.h"
#include "text/tweet_tokenizer.h"
#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/file_io.h"
#include "util/string_util.h"

namespace emd {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Disarms every failpoint on scope exit so no test leaks armed points.
struct FailpointGuard {
  FailpointGuard() { failpoint::DisableAll(); }
  ~FailpointGuard() { failpoint::DisableAll(); }
};

AnnotatedTweet MakeTweet(long id, const std::string& text) {
  AnnotatedTweet t;
  t.tweet_id = id;
  t.sentence_id = static_cast<int>(id) * 10;
  t.topic_id = 7;
  t.text = text;
  t.tokens = TweetTokenizer().Tokenize(text);
  return t;
}

uint32_t MentionDigest(const GlobalizerOutput& out) {
  uint32_t crc = 0;
  for (const auto& tweet_mentions : out.mentions) {
    for (const TokenSpan& span : tweet_mentions) {
      uint64_t packed[2] = {span.begin, span.end};
      crc = Crc32(packed, sizeof(packed), crc);
    }
  }
  return crc;
}

/// Live ids resolve through the trie, tombstoned ids miss and carry an
/// eviction label — the structural invariant every prune must preserve.
void CheckTrieCandidateInvariants(const CTrie& trie,
                                  const CandidateBase& candidates) {
  for (int id = 0; id < trie.num_candidates(); ++id) {
    if (trie.IsTombstone(id)) {
      EXPECT_FALSE(candidates.Contains(id)) << "tombstoned id " << id;
      EXPECT_TRUE(trie.CandidateKey(id).empty()) << "tombstoned id " << id;
      EXPECT_EQ(trie.CandidateLength(id), 0) << "tombstoned id " << id;
    } else {
      EXPECT_EQ(trie.Find(Split(trie.CandidateKey(id))), id);
    }
  }
}

// --------------------------------------------------------- CTrie pruning --

TEST(CTriePruneTest, PrunedPhraseMissesOnLookup) {
  CTrie trie;
  const int id = trie.Insert({"andy", "beshear"});
  ASSERT_EQ(trie.Find({"andy", "beshear"}), id);

  EXPECT_GT(trie.Prune(id), 0);
  EXPECT_EQ(trie.Find({"andy", "beshear"}), CTrie::kNoCandidate);
  EXPECT_TRUE(trie.IsTombstone(id));
  EXPECT_EQ(trie.num_live_candidates(), 0);
  EXPECT_EQ(trie.num_candidates(), 1);  // id space keeps the hole
  // Pruning an already-pruned id is a no-op.
  EXPECT_EQ(trie.Prune(id), 0);
}

TEST(CTriePruneTest, SharedPrefixSurvivesSiblingPrune) {
  CTrie trie;
  const int beshear = trie.Insert({"andy", "beshear"});
  const int cohen = trie.Insert({"andy", "cohen"});
  const int andy = trie.Insert({"andy"});

  // Removing one leaf must not disturb the shared "andy" prefix node, which
  // still terminates a candidate and still roots the sibling subtree.
  EXPECT_EQ(trie.Prune(beshear), 1);  // only the "beshear" leaf frees
  EXPECT_EQ(trie.Find({"andy", "beshear"}), CTrie::kNoCandidate);
  EXPECT_EQ(trie.Find({"andy", "cohen"}), cohen);
  EXPECT_EQ(trie.Find({"andy"}), andy);

  // Now the prefix candidate: the node survives (it roots "cohen").
  EXPECT_EQ(trie.Prune(andy), 0);
  EXPECT_EQ(trie.Find({"andy"}), CTrie::kNoCandidate);
  EXPECT_EQ(trie.Find({"andy", "cohen"}), cohen);
}

TEST(CTriePruneTest, PruneRecyclesNodeSlotsAndIdsStayFresh) {
  CTrie trie;
  const int first = trie.Insert({"some", "long", "candidate", "phrase"});
  const int nodes_before = trie.num_live_nodes();
  ASSERT_EQ(trie.Prune(first), 4);
  EXPECT_EQ(trie.num_live_nodes(), nodes_before - 4);

  // Re-inserting the same phrase reuses the freed node slots but NEVER the
  // tombstoned id: evidence for a re-appearing candidate restarts from zero.
  const int second = trie.Insert({"some", "long", "candidate", "phrase"});
  EXPECT_NE(second, first);
  EXPECT_EQ(trie.num_live_nodes(), nodes_before);
  EXPECT_TRUE(trie.IsTombstone(first));
  EXPECT_FALSE(trie.IsTombstone(second));
  EXPECT_EQ(trie.Find({"some", "long", "candidate", "phrase"}), second);
}

TEST(CTriePruneTest, ApproxBytesShrinksWithPruning) {
  CTrie trie;
  for (int i = 0; i < 32; ++i) {
    trie.Insert({"prefix", "number", std::to_string(i)});
  }
  const size_t before = trie.ApproxBytes();
  for (int i = 0; i < 32; ++i) trie.Prune(i);
  EXPECT_LT(trie.ApproxBytes(), before);
  EXPECT_EQ(trie.num_live_candidates(), 0);
}

// --------------------------------------------------------- Decayed pooling --

TEST(DecayedPoolingTest, HalfLifeScalesOldEvidence) {
  CandidateBase cb;
  cb.set_decay_half_life(1);  // lambda = 0.5 per stream position
  cb.GetOrCreate(0, "x", 1);

  Mat a(1, 2);
  a(0, 0) = 4.f;
  a(0, 1) = 8.f;
  Mat b(1, 2);
  b(0, 0) = 1.f;
  b(0, 1) = 1.f;
  cb.AddMention(0, {.tweet_index = 0, .span = {0, 1}}, a);
  cb.AddMention(0, {.tweet_index = 2, .span = {0, 1}}, b);

  // Two positions elapsed: old evidence decays by 0.5^2 = 0.25.
  const CandidateRecord& rec = cb.at(0);
  EXPECT_DOUBLE_EQ(rec.embedding_weight, 1.25);
  EXPECT_EQ(rec.embedding_count, 2);
  EXPECT_FLOAT_EQ(rec.embedding_sum(0, 0), 4.f * 0.25f + 1.f);
  EXPECT_FLOAT_EQ(rec.embedding_sum(0, 1), 8.f * 0.25f + 1.f);
  const Mat g = rec.GlobalEmbedding();
  EXPECT_FLOAT_EQ(g(0, 0), (4.f * 0.25f + 1.f) / 1.25f);
  EXPECT_EQ(rec.last_mention_pos, 2u);
  EXPECT_EQ(rec.last_update_pos, 2u);
}

TEST(DecayedPoolingTest, DecayOffIsBitExactLegacyMean) {
  CandidateBase cb;  // default: no decay
  cb.GetOrCreate(0, "x", 1);
  Mat a(1, 3);
  Mat b(1, 3);
  for (int j = 0; j < 3; ++j) {
    a(0, j) = 0.1f * static_cast<float>(j + 1);
    b(0, j) = 0.7f - 0.2f * static_cast<float>(j);
  }
  cb.AddMention(0, {.tweet_index = 0, .span = {0, 1}}, a);
  cb.AddMention(0, {.tweet_index = 5, .span = {0, 1}}, b);

  const CandidateRecord& rec = cb.at(0);
  EXPECT_EQ(rec.embedding_weight, 2.0);  // exactly the count
  Mat expected = a;
  expected.Add(b);
  EXPECT_EQ(std::memcmp(rec.embedding_sum.data(), expected.data(),
                        sizeof(float) * expected.size()),
            0);
  expected.Scale(1.f / 2.f);  // the legacy integer-count mean, bit for bit
  const Mat g = rec.GlobalEmbedding();
  EXPECT_EQ(std::memcmp(g.data(), expected.data(),
                        sizeof(float) * expected.size()),
            0);
}

TEST(DecayedPoolingTest, SamePositionMentionsDoNotDecayEachOther) {
  CandidateBase cb;
  cb.set_decay_half_life(4);
  cb.GetOrCreate(0, "x", 1);
  Mat a(1, 1);
  a(0, 0) = 2.f;
  cb.AddMention(0, {.tweet_index = 3, .span = {0, 1}}, a);
  cb.AddMention(0, {.tweet_index = 3, .span = {1, 2}}, a);
  EXPECT_DOUBLE_EQ(cb.at(0).embedding_weight, 2.0);
  EXPECT_FLOAT_EQ(cb.at(0).embedding_sum(0, 0), 4.f);
}

// ------------------------------------------------------- Governor (unit) --

TEST(MemoryGovernorTest, ConfirmedEntitiesAreNeverEvicted) {
  ShardedGlobalState state;
  TweetBase tb;
  const int keep = state.Insert({"kept"});
  const int drop = state.Insert({"dropped"});
  state.GetOrCreate(keep).label = CandidateLabel::kEntity;
  state.GetOrCreate(drop).label = CandidateLabel::kNonEntity;

  MemoryGovernorOptions opt;
  opt.budget_bytes = 1;  // everything is over budget: evict all it may
  MemoryGovernor governor(&state, &tb, opt);
  governor.Run({});

  EXPECT_TRUE(state.Contains(keep));
  EXPECT_FALSE(state.Contains(drop));
  EXPECT_TRUE(state.IsTombstone(drop));
  EXPECT_EQ(state.EvictedLabel(drop), CandidateLabel::kNonEntity);
  EXPECT_EQ(governor.stats().evicted_candidates, 1u);
  EXPECT_GT(governor.stats().pruned_nodes, 0u);
  // Reclaim could not free the entity: the budget stays blown -> hard.
  EXPECT_EQ(governor.pressure(), MemoryPressure::kHard);
  CheckTrieCandidateInvariants(state.shard_trie(0), state.shard_candidates(0));
}

TEST(MemoryGovernorTest, YoungAmbiguousCandidatesAreRetained) {
  ShardedGlobalState state;
  TweetBase tb;
  const int young = state.Insert({"young"});
  CandidateRecord& rec = state.GetOrCreate(young);
  rec.label = CandidateLabel::kAmbiguous;
  rec.last_mention_pos = 0;

  MemoryGovernorOptions opt;
  opt.budget_bytes = 1;
  opt.min_retain_tweets = 100;  // stream_pos (0) < retention window
  MemoryGovernor governor(&state, &tb, opt);
  governor.Run({});
  EXPECT_TRUE(state.Contains(young));
  EXPECT_EQ(governor.stats().evicted_candidates, 0u);
}

TEST(MemoryGovernorTest, ReclassifyRunsOnConfiguredInterval) {
  ShardedGlobalState state;
  TweetBase tb;
  MemoryGovernorOptions opt;
  opt.reclassify_interval_batches = 2;
  MemoryGovernor governor(&state, &tb, opt);
  ASSERT_TRUE(governor.enabled());
  ASSERT_FALSE(governor.budgeted());

  int calls = 0;
  for (int batch = 0; batch < 5; ++batch) {
    governor.Run([&calls] {
      ++calls;
      return size_t{3};
    });
  }
  EXPECT_EQ(calls, 2);  // batches 2 and 4
  EXPECT_EQ(governor.stats().reclassified, 6u);
}

TEST(MemoryGovernorTest, PressureFailpointForcesHardWithoutRealPressure) {
  FailpointGuard guard;
  ShardedGlobalState state;
  TweetBase tb;
  MemoryGovernorOptions opt;
  opt.budget_bytes = 1ull << 30;  // far above anything these stores hold
  MemoryGovernor governor(&state, &tb, opt);

  governor.Run({});
  ASSERT_EQ(governor.pressure(), MemoryPressure::kNone);

  failpoint::EnableAfter("core.memory_governor.pressure",
                         Status::ResourceExhausted("chaos"), /*skip=*/0,
                         /*max_fires=*/1);
  governor.Run({});
  EXPECT_EQ(governor.pressure(), MemoryPressure::kHard);

  // Failpoint exhausted: the next pass re-evaluates real occupancy.
  governor.Run({});
  EXPECT_EQ(governor.pressure(), MemoryPressure::kNone);
}

TEST(MemoryGovernorTest, EvictFailpointAbortsSweepBetweenVictims) {
  FailpointGuard guard;
  ShardedGlobalState state;
  TweetBase tb;
  for (int i = 0; i < 4; ++i) {
    const std::string key = "cold" + std::to_string(i);
    const int id = state.Insert({key});
    state.GetOrCreate(id).label = CandidateLabel::kNonEntity;
  }
  MemoryGovernorOptions opt;
  opt.budget_bytes = 1;
  MemoryGovernor governor(&state, &tb, opt);

  // First victim passes the gate, the second check fires and aborts the
  // sweep — each eviction is atomic, so state stays consistent mid-sweep.
  failpoint::EnableAfter("core.memory_governor.evict",
                         Status::Internal("killed mid-sweep"), /*skip=*/1,
                         /*max_fires=*/1);
  governor.Run({});
  EXPECT_EQ(governor.stats().evicted_candidates, 1u);
  EXPECT_FALSE(state.Contains(0));  // deterministic order: lowest gid first
  EXPECT_TRUE(state.Contains(1));
  EXPECT_TRUE(state.Contains(2));
  EXPECT_TRUE(state.Contains(3));
  CheckTrieCandidateInvariants(state.shard_trie(0), state.shard_candidates(0));

  // Next pass (failpoint spent) finishes the job.
  governor.Run({});
  EXPECT_EQ(governor.stats().evicted_candidates, 4u);
  CheckTrieCandidateInvariants(state.shard_trie(0), state.shard_candidates(0));
}

// ------------------------------------------------- Pipeline integration --

std::vector<MockLocalSystem::Rule> StreamRules() {
  return {{.phrase = {"coronavirus"}},
          {.phrase = {"beshear"}},
          {.phrase = {"kentucky"}},
          {.phrase = {"louisville"}}};
}

Dataset GovernedStream(int copies) {
  Dataset d;
  d.name = "governed";
  long id = 1;
  for (int c = 0; c < copies; ++c) {
    d.tweets.push_back(MakeTweet(id++, "the Coronavirus keeps spreading"));
    d.tweets.push_back(MakeTweet(id++, "Beshear spoke in Kentucky today"));
    d.tweets.push_back(MakeTweet(id++, "cases rising in Louisville again"));
    d.tweets.push_back(MakeTweet(id++, "nothing to report tonight folks"));
  }
  return d;
}

TEST(GovernedPipelineTest, InertGovernanceIsBitIdenticalToUngoverned) {
  Dataset d = GovernedStream(4);
  PhraseEmbedder pe(8, 8);

  GlobalizerOptions plain;
  plain.mode = GlobalizerOptions::Mode::kMentionExtraction;
  plain.batch_size = 4;
  MockLocalSystem mock_a(StreamRules(), /*dim=*/8);
  Globalizer ungoverned(&mock_a, &pe, nullptr, plain);
  GlobalizerOutput out_a = ungoverned.Run(d).value();

  // Budget large enough that accounting runs but nothing is ever reclaimed:
  // the governed pipeline must be byte-for-byte the ungoverned one.
  GlobalizerOptions governed = plain;
  governed.memory.budget_bytes = 1ull << 30;
  MockLocalSystem mock_b(StreamRules(), /*dim=*/8);
  Globalizer with_budget(&mock_b, &pe, nullptr, governed);
  GlobalizerOutput out_b = with_budget.Run(d).value();

  EXPECT_EQ(MentionDigest(out_a), MentionDigest(out_b));
  EXPECT_EQ(out_b.num_evicted, 0u);
  EXPECT_EQ(out_b.num_trimmed, 0u);
  EXPECT_EQ(out_b.memory_pressure, 0);
  ASSERT_EQ(ungoverned.candidate_base().size(), with_budget.candidate_base().size());
  for (size_t c = 0; c < ungoverned.candidate_base().size(); ++c) {
    const CandidateRecord& ra = ungoverned.candidate_base().at(static_cast<int>(c));
    const CandidateRecord& rb = with_budget.candidate_base().at(static_cast<int>(c));
    ASSERT_EQ(ra.embedding_count, rb.embedding_count);
    EXPECT_EQ(ra.embedding_weight, rb.embedding_weight);
    ASSERT_EQ(ra.embedding_sum.size(), rb.embedding_sum.size());
    EXPECT_EQ(std::memcmp(ra.embedding_sum.data(), rb.embedding_sum.data(),
                          sizeof(float) * ra.embedding_sum.size()),
              0)
        << "candidate " << c;
  }
}

TEST(GovernedPipelineTest, EvictionPreservesAlreadyEmittedMentions) {
  Dataset d = GovernedStream(1);
  // Filler batches age the candidates past the retention window without
  // adding new mentions.
  for (long id = 100; id < 116; ++id) {
    d.tweets.push_back(MakeTweet(id, "just filler words here tonight"));
  }
  EntityClassifier clf({.input_dim = 7});

  GlobalizerOptions plain;
  plain.mode = GlobalizerOptions::Mode::kFull;
  plain.batch_size = 4;
  MockLocalSystem mock_a(StreamRules());
  Globalizer ungoverned(&mock_a, nullptr, &clf, plain);

  GlobalizerOptions governed = plain;
  governed.memory.budget_bytes = 4096;  // tiny: reclaim on every batch
  governed.memory.min_retain_tweets = 8;
  MockLocalSystem mock_b(StreamRules());
  Globalizer evicting(&mock_b, nullptr, &clf, governed);

  // Drive both batch by batch, finalizing after the first batch so labels
  // exist (non-deep mock: no embeddings -> every candidate goes ambiguous)
  // before the governor starts evicting aged ambiguous candidates.
  for (size_t i = 0; i < d.tweets.size(); i += 4) {
    std::span<const AnnotatedTweet> batch(d.tweets.data() + i, 4);
    ASSERT_TRUE(ungoverned.ProcessBatch(batch).ok());
    ASSERT_TRUE(evicting.ProcessBatch(batch).ok());
    ASSERT_TRUE(ungoverned.Finalize().ok());
    ASSERT_TRUE(evicting.Finalize().ok());
  }
  GlobalizerOutput out_plain = ungoverned.Finalize().value();
  GlobalizerOutput out_evict = evicting.Finalize().value();

  // Candidates were evicted, yet their recorded mentions still flow to the
  // output through the evicted-label side table.
  EXPECT_GT(out_evict.num_evicted, 0u);
  EXPECT_GT(out_evict.num_trimmed, 0u);
  EXPECT_EQ(MentionDigest(out_plain), MentionDigest(out_evict));
  EXPECT_NE(out_evict.summary.find("memory:"), std::string::npos);
  EXPECT_GT(evicting.candidate_base().num_evicted(), 0u);
  CheckTrieCandidateInvariants(evicting.ctrie(), evicting.candidate_base());
}

// ------------------------------------------------------- Admission edge --

TEST(MemoryAdmissionTest, HardPressureShedsWithMaxRetryHint) {
  IngestQueue queue({.capacity = 8});
  int level = 2;
  net::AdmissionOptions opt;
  opt.high_watermark = 6;
  opt.low_watermark = 3;
  opt.memory_pressure = [&level] { return level; };
  net::AdmissionController admission(&queue, opt);

  const net::AdmissionDecision decision =
      admission.Offer("client-a", MakeTweet(1, "hello"), 0);
  ASSERT_FALSE(decision.accepted);
  EXPECT_EQ(decision.reason, net::RejectReason::kMemoryPressure);
  EXPECT_EQ(decision.retry_after_ms, opt.max_retry_after_ms);
  // Memory sheds land in their own counter, disjoint from queue-full sheds.
  EXPECT_EQ(queue.stats().memory_rejected, 1u);
  EXPECT_EQ(queue.stats().admission_rejected, 0u);

  level = 0;
  EXPECT_TRUE(admission.Offer("client-a", MakeTweet(2, "hello"), 0).accepted);
}

TEST(MemoryAdmissionTest, SoftPressureTightensWatermarkToLow) {
  IngestQueue queue({.capacity = 8});
  int level = 1;
  net::AdmissionOptions opt;
  opt.high_watermark = 6;
  opt.low_watermark = 2;
  opt.memory_pressure = [&level] { return level; };
  net::AdmissionController admission(&queue, opt);

  // Below the low watermark even soft pressure admits.
  EXPECT_TRUE(admission.Offer("client-a", MakeTweet(1, "a"), 0).accepted);
  // Backlog (1 staged + 1 queued) reaches the low watermark: under soft
  // pressure that is already too much.
  ASSERT_TRUE(queue.Push(MakeTweet(2, "b")).ok());
  const net::AdmissionDecision decision =
      admission.Offer("client-a", MakeTweet(3, "c"), 0);
  ASSERT_FALSE(decision.accepted);
  EXPECT_EQ(decision.reason, net::RejectReason::kMemoryPressure);
  EXPECT_EQ(queue.stats().memory_rejected, 1u);

  // Without pressure the same backlog is fine (still under high_watermark).
  level = 0;
  EXPECT_TRUE(admission.Offer("client-a", MakeTweet(4, "d"), 0).accepted);
}

TEST(MemoryAdmissionTest, MemoryPressureReasonSurvivesTheWire) {
  std::string bytes;
  net::AppendRetryAfter(&bytes, {.seq = 9,
                                 .retry_after_ms = 2000,
                                 .reason = net::RejectReason::kMemoryPressure});
  net::FrameDecoder decoder;
  decoder.Feed(bytes);
  net::Frame frame;
  ASSERT_EQ(decoder.Next(&frame), net::FrameDecoder::NextStatus::kFrame);
  const net::RetryAfterFrame retry = net::ParseRetryAfter(frame).value();
  EXPECT_EQ(retry.reason, net::RejectReason::kMemoryPressure);
  EXPECT_STREQ(net::RejectReasonName(retry.reason), "memory_pressure");
}

// ----------------------------------------------------------- Checkpoints --

TEST(MemoryCheckpointTest, V4RoundTripsPrunedStateAndGovernorStats) {
  FailpointGuard guard;
  const std::string path = TempPath("emd_memory_ckpt_v4.bin");
  Dataset d = GovernedStream(2);

  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.batch_size = 4;
  opt.memory.budget_bytes = 4096;
  opt.memory.min_retain_tweets = 0;  // everything is immediately evictable
  MockLocalSystem mock(StreamRules());
  Globalizer g(&mock, nullptr, nullptr, opt);
  ASSERT_TRUE(g.Run(d).ok());
  ASSERT_GT(g.memory_governor().stats().evicted_candidates, 0u);
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());

  MockLocalSystem mock2(StreamRules());
  Globalizer restored(&mock2, nullptr, nullptr, opt);
  ASSERT_TRUE(restored.RestoreCheckpoint(path).ok());

  // The dense id space — including eviction holes — survives the round trip.
  ASSERT_EQ(restored.ctrie().num_candidates(), g.ctrie().num_candidates());
  EXPECT_EQ(restored.ctrie().num_live_candidates(),
            g.ctrie().num_live_candidates());
  for (int id = 0; id < g.ctrie().num_candidates(); ++id) {
    EXPECT_EQ(restored.ctrie().IsTombstone(id), g.ctrie().IsTombstone(id));
    EXPECT_EQ(restored.candidate_base().WasEvicted(id),
              g.candidate_base().WasEvicted(id));
    EXPECT_EQ(restored.candidate_base().EvictedLabel(id),
              g.candidate_base().EvictedLabel(id));
  }
  CheckTrieCandidateInvariants(restored.ctrie(), restored.candidate_base());
  // Lifetime reclamation totals are cumulative across the restore.
  EXPECT_EQ(restored.memory_governor().stats().evicted_candidates,
            g.memory_governor().stats().evicted_candidates);
  EXPECT_EQ(restored.memory_governor().stats().pruned_nodes,
            g.memory_governor().stats().pruned_nodes);
  EXPECT_EQ(restored.memory_governor().stats().trimmed_tweets,
            g.memory_governor().stats().trimmed_tweets);
  EXPECT_EQ(MentionDigest(restored.Finalize().value()),
            MentionDigest(g.Finalize().value()));
}

TEST(MemoryCheckpointTest, KillAndResumeMidEvictionKeepsStateConsistent) {
  FailpointGuard guard;
  const std::string path = TempPath("emd_memory_ckpt_midsweep.bin");
  Dataset d = GovernedStream(2);

  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.batch_size = 4;
  opt.memory.budget_bytes = 4096;
  opt.memory.min_retain_tweets = 0;
  MockLocalSystem mock(StreamRules());
  Globalizer g(&mock, nullptr, nullptr, opt);

  // Abort the first eviction sweep after one victim — the "process dies mid
  // reclamation" scenario — and checkpoint exactly that state.
  failpoint::EnableAfter("core.memory_governor.evict",
                         Status::Internal("killed mid-sweep"), /*skip=*/1,
                         /*max_fires=*/1);
  ASSERT_TRUE(
      g.ProcessBatch(std::span<const AnnotatedTweet>(d.tweets.data(), 4)).ok());
  ASSERT_EQ(g.memory_governor().stats().evicted_candidates, 1u);
  ASSERT_TRUE(g.SaveCheckpoint(path).ok());
  failpoint::DisableAll();

  MockLocalSystem mock2(StreamRules());
  Globalizer resumed(&mock2, nullptr, nullptr, opt);
  ASSERT_TRUE(resumed.RestoreCheckpoint(path).ok());
  CheckTrieCandidateInvariants(resumed.ctrie(), resumed.candidate_base());
  EXPECT_EQ(resumed.memory_governor().stats().evicted_candidates, 1u);

  // The resumed stream keeps processing (and keeps evicting) normally.
  ASSERT_TRUE(resumed
                  .ProcessBatch(std::span<const AnnotatedTweet>(
                      d.tweets.data() + 4, d.tweets.size() - 4))
                  .ok());
  EXPECT_TRUE(resumed.Finalize().ok());
  CheckTrieCandidateInvariants(resumed.ctrie(), resumed.candidate_base());
}

/// Hand-crafted pre-governance (version 3) checkpoint: no governor stats, no
/// trie live bytes, no tweet trimmed byte, no decay fields, no evicted-label
/// bytes. The v4 reader must load it and derive the governance fields.
std::string BuildV3Checkpoint() {
  std::string buf;
  binio::AppendU32(&buf, 0x454D4447);  // 'EMDG'
  binio::AppendU32(&buf, 3);           // version
  binio::AppendU8(&buf, 1);            // mode = kMentionExtraction
  binio::AppendU64(&buf, 1);           // processed_tweets
  binio::AppendU32(&buf, 0);           // num_quarantined
  binio::AppendU32(&buf, 0);           // num_degraded
  binio::AppendU8(&buf, 0);            // classifier_degraded
  binio::AppendU32(&buf, 2);           // num_retries
  binio::AppendU32(&buf, 0);           // num_fallback
  binio::AppendU32(&buf, 0);           // num_dead_lettered
  binio::AppendU32(&buf, 1);           // breaker_trips
  binio::AppendU32(&buf, 1);           // breaker_recoveries

  // CTrie: one candidate, no per-id live byte in v3.
  binio::AppendU32(&buf, 1);
  binio::AppendString(&buf, "coronavirus");
  binio::AppendU32(&buf, 1);  // token length

  // TweetBase: one record, no trimmed byte in v3.
  binio::AppendU64(&buf, 1);
  binio::AppendI64(&buf, 42);  // tweet_id
  binio::AppendI32(&buf, 7);   // sentence_id
  binio::AppendU8(&buf, 0);    // quarantined
  binio::AppendU32(&buf, 2);   // tokens
  binio::AppendString(&buf, "the");
  binio::AppendU64(&buf, 0);
  binio::AppendU64(&buf, 3);
  binio::AppendU8(&buf, 0);  // kWord
  binio::AppendString(&buf, "Coronavirus");
  binio::AppendU64(&buf, 4);
  binio::AppendU64(&buf, 15);
  binio::AppendU8(&buf, 0);
  binio::AppendU32(&buf, 1);  // mentions
  binio::AppendU64(&buf, 1);  // span.begin
  binio::AppendU64(&buf, 2);  // span.end
  binio::AppendI32(&buf, 0);  // candidate_id
  binio::AppendU8(&buf, 1);   // locally_detected

  // CandidateBase: one present slot, no decay fields in v3.
  binio::AppendU64(&buf, 1);
  binio::AppendU8(&buf, 1);  // present
  binio::AppendString(&buf, "coronavirus");
  binio::AppendI32(&buf, 1);  // num_tokens
  binio::AppendU32(&buf, 1);  // mentions
  binio::AppendU64(&buf, 0);  // tweet_index
  binio::AppendU64(&buf, 1);
  binio::AppendU64(&buf, 2);
  binio::AppendU8(&buf, 1);
  binio::AppendI32(&buf, 1);  // embedding_sum rows
  binio::AppendI32(&buf, 3);  // cols
  binio::AppendF32(&buf, 1.f);
  binio::AppendF32(&buf, 2.f);
  binio::AppendF32(&buf, 3.f);
  binio::AppendI32(&buf, 1);    // embedding_count
  binio::AppendU8(&buf, 0);     // label = kUnlabeled
  binio::AppendF32(&buf, -1.f); // entity_probability
  binio::AppendU32(&buf, 0);    // mention_embeddings

  // v3 metrics block: empty.
  binio::AppendU32(&buf, 0);
  binio::AppendU32(&buf, 0);

  binio::AppendU32(&buf, Crc32(buf.data(), buf.size()));
  return buf;
}

TEST(MemoryCheckpointTest, V3CheckpointLoadsIntoV4Reader) {
  const std::string path = TempPath("emd_memory_ckpt_v3.bin");
  ASSERT_TRUE(WriteStringToFile(path, BuildV3Checkpoint()).ok());

  MockLocalSystem mock(StreamRules());
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  ASSERT_TRUE(g.RestoreCheckpoint(path).ok());

  EXPECT_EQ(g.processed_tweets(), 1u);
  ASSERT_EQ(g.ctrie().num_candidates(), 1);
  EXPECT_FALSE(g.ctrie().IsTombstone(0));
  ASSERT_TRUE(g.candidate_base().Contains(0));
  // Pre-governance files restore to the exact ungoverned state: weight is
  // the count, recency positions derive from the mention list.
  const CandidateRecord& rec = g.candidate_base().at(0);
  EXPECT_EQ(rec.embedding_weight, 1.0);
  EXPECT_EQ(rec.last_mention_pos, 0u);
  EXPECT_EQ(rec.last_update_pos, 0u);
  EXPECT_FALSE(g.candidate_base().WasEvicted(0));
  EXPECT_EQ(g.memory_governor().stats().evicted_candidates, 0u);

  // And re-saving writes a v4 file that round-trips.
  const std::string v4_path = TempPath("emd_memory_ckpt_v3_resaved.bin");
  ASSERT_TRUE(g.SaveCheckpoint(v4_path).ok());
  MockLocalSystem mock2(StreamRules());
  Globalizer again(&mock2, nullptr, nullptr, opt);
  ASSERT_TRUE(again.RestoreCheckpoint(v4_path).ok());
  EXPECT_EQ(again.processed_tweets(), 1u);
  EXPECT_EQ(again.candidate_base().at(0).embedding_weight, 1.0);
}

TEST(MemoryCheckpointTest, VersionSkewErrorNamesFoundAndSupportedVersions) {
  const std::string path = TempPath("emd_memory_ckpt_v99.bin");
  std::string buf;
  binio::AppendU32(&buf, 0x454D4447);
  binio::AppendU32(&buf, 99);
  binio::AppendU32(&buf, Crc32(buf.data(), buf.size()));
  ASSERT_TRUE(WriteStringToFile(path, buf).ok());

  MockLocalSystem mock(StreamRules());
  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  Globalizer g(&mock, nullptr, nullptr, opt);
  const Status st = g.RestoreCheckpoint(path);
  ASSERT_FALSE(st.ok());
  const std::string message = st.ToString();
  EXPECT_NE(message.find("unsupported format version 99"), std::string::npos)
      << message;
  EXPECT_NE(message.find("versions 1 through 5"), std::string::npos) << message;
  EXPECT_NE(message.find("newer build"), std::string::npos) << message;
}

// ------------------------------------------------------------ TSan chaos --

TEST(MemoryChaosTest, EvictionAtBarrierNeverRacesWorkersOrPressureReaders) {
  FailpointGuard guard;
  Dataset d = GovernedStream(8);
  PhraseEmbedder pe(8, 8);
  MockLocalSystem mock(StreamRules(), /*dim=*/8);

  GlobalizerOptions opt;
  opt.mode = GlobalizerOptions::Mode::kMentionExtraction;
  opt.batch_size = 4;
  opt.num_threads = 4;  // workers Step() the trie while batches process
  opt.memory.budget_bytes = 8192;  // aggressive: evict during the stream
  opt.memory.min_retain_tweets = 0;
  opt.memory.decay_half_life_tweets = 16;
  Globalizer g(&mock, &pe, nullptr, opt);

  // The serving edge's view: concurrent atomic pressure reads while the
  // merge barrier evicts. TSan proves the contract.
  std::atomic<bool> done{false};
  uint64_t observed = 0;
  std::thread poller([&] {
    while (!done.load(std::memory_order_relaxed)) {
      observed += static_cast<uint64_t>(g.memory_pressure());
      observed += g.memory_governor().governed_bytes() > 0 ? 1 : 0;
    }
  });
  for (size_t i = 0; i < d.tweets.size(); i += 4) {
    ASSERT_TRUE(
        g.ProcessBatch(std::span<const AnnotatedTweet>(d.tweets.data() + i, 4))
            .ok());
  }
  done.store(true, std::memory_order_relaxed);
  poller.join();

  GlobalizerOutput out = g.Finalize().value();
  EXPECT_GT(out.num_trimmed, 0u);
  CheckTrieCandidateInvariants(g.ctrie(), g.candidate_base());
  // Parallel governed output must match a serial governed run bit for bit.
  GlobalizerOptions serial = opt;
  serial.num_threads = 1;
  MockLocalSystem mock2(StreamRules(), /*dim=*/8);
  Globalizer s(&mock2, &pe, nullptr, serial);
  for (size_t i = 0; i < d.tweets.size(); i += 4) {
    ASSERT_TRUE(
        s.ProcessBatch(std::span<const AnnotatedTweet>(d.tweets.data() + i, 4))
            .ok());
  }
  EXPECT_EQ(MentionDigest(s.Finalize().value()), MentionDigest(out));
}

}  // namespace
}  // namespace emd
