// Learning sanity checks: each sequence model must be able to fit a small
// synthetic task (loss decreases, predictions become correct). These protect
// against sign errors that gradient checks alone can miss (e.g. optimizer
// coupling, cache reuse across steps).

#include <gtest/gtest.h>

#include <cmath>

#include "nn/crf.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace emd {
namespace {

// Task: label each position with the parity of "1"-tokens seen so far —
// requires recurrent state.
TEST(NnTrainTest, LstmLearnsRunningParity) {
  Rng rng(1);
  Embedding emb(3, 8, &rng);
  Lstm lstm(8, 16, &rng);
  Linear out(16, 2, &rng);
  ParamSet params;
  emb.CollectParams(&params);
  lstm.CollectParams(&params);
  out.CollectParams(&params);
  AdamOptimizer adam(0.01f);

  auto make_seq = [&](Rng* r, std::vector<int>* ids, std::vector<int>* labels) {
    const int T = r->NextInt(4, 10);
    ids->resize(T);
    labels->resize(T);
    int parity = 0;
    for (int t = 0; t < T; ++t) {
      (*ids)[t] = r->NextBernoulli(0.5) ? 1 : 2;
      if ((*ids)[t] == 1) parity ^= 1;
      (*labels)[t] = parity;
    }
  };

  double first_loss = 0, last_loss = 0;
  Rng data_rng(2);
  for (int step = 0; step < 600; ++step) {
    std::vector<int> ids, labels;
    make_seq(&data_rng, &ids, &labels);
    params.ZeroGrads();
    Mat h = lstm.Forward(emb.Forward(ids));
    Mat logits = out.Forward(h);
    Mat probs = logits;
    SoftmaxRowsInPlace(&probs);
    double loss = 0;
    Mat dlogits(logits.rows(), 2);
    for (int t = 0; t < logits.rows(); ++t) {
      loss += -std::log(std::max(1e-8f, probs(t, labels[t])));
      for (int l = 0; l < 2; ++l) {
        dlogits(t, l) = (probs(t, l) - (l == labels[t] ? 1.f : 0.f)) / logits.rows();
      }
    }
    loss /= logits.rows();
    if (step == 0) first_loss = loss;
    last_loss = loss;
    emb.Backward(lstm.Backward(out.Backward(dlogits)));
    params.ClipGradNorm(5);
    adam.Step(&params);
  }
  EXPECT_LT(last_loss, first_loss * 0.5) << "LSTM failed to fit parity task";
}

// Task: classify each token by whether the *other* end of the sequence holds
// a marker token — requires attention across positions.
TEST(NnTrainTest, TransformerLearnsCrossPositionSignal) {
  Rng rng(3);
  Embedding emb(4, 16, &rng);
  Embedding pos(12, 16, &rng);
  TransformerEncoderLayer enc(16, 2, 32, 0.f, &rng);
  Linear out(16, 2, &rng);
  ParamSet params;
  emb.CollectParams(&params);
  pos.CollectParams(&params);
  enc.CollectParams(&params);
  out.CollectParams(&params);
  AdamOptimizer adam(5e-3f);

  Rng data_rng(4);
  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 500; ++step) {
    const int T = 8;
    std::vector<int> ids(T), positions(T);
    const bool marker = data_rng.NextBernoulli(0.5);
    for (int t = 0; t < T; ++t) {
      ids[t] = 2 + (data_rng.NextBernoulli(0.5) ? 1 : 0);
      positions[t] = t;
    }
    ids[T - 1] = marker ? 1 : ids[T - 1];
    const int label = marker ? 1 : 0;

    params.ZeroGrads();
    Mat x = emb.Forward(ids);
    x.Add(pos.Forward(positions));
    Mat h = enc.Forward(x, false, &rng);
    Mat logits = out.Forward(h);
    // Read the prediction at position 0 (must attend to position T-1).
    Mat p0 = logits.RowCopy(0);
    float mx = std::max(p0(0, 0), p0(0, 1));
    const double z = std::exp(p0(0, 0) - mx) + std::exp(p0(0, 1) - mx);
    const double prob1 = std::exp(p0(0, 1) - mx) / z;
    const double loss = -(label ? std::log(prob1 + 1e-9)
                                : std::log(1 - prob1 + 1e-9));
    if (step == 0) first_loss = loss;
    last_loss = 0.95 * last_loss + 0.05 * loss;  // smoothed
    Mat dlogits(T, 2);
    dlogits(0, 1) = static_cast<float>(prob1 - label);
    dlogits(0, 0) = static_cast<float>(-(prob1 - label));
    Mat dx = enc.Backward(out.Backward(dlogits));
    emb.Backward(dx);
    pos.Backward(dx);
    params.ClipGradNorm(5);
    adam.Step(&params);
  }
  EXPECT_LT(last_loss, std::max(0.45, first_loss * 0.7))
      << "transformer failed the cross-position task";
}

// Task: BIO-style segmentation where label depends on the previous label —
// the CRF transitions must learn "no I after O without B".
TEST(NnTrainTest, CrfWithEmissionsLearnsSegmentation) {
  Rng rng(5);
  Embedding emb(5, 8, &rng);
  Linear out(8, 3, &rng);
  LinearChainCrf crf(3, &rng);
  ParamSet params;
  emb.CollectParams(&params);
  out.CollectParams(&params);
  crf.CollectParams(&params);
  AdamOptimizer adam(0.02f);

  // Token 1 starts an entity of length 2 (ids: 1=start, 2=inside marker is
  // ambiguous with outside id 3 — only transitions disambiguate).
  auto make_seq = [](Rng* r, std::vector<int>* ids, std::vector<int>* labels) {
    const int T = r->NextInt(5, 9);
    ids->assign(T, 3);
    labels->assign(T, 0);
    const int s = r->NextInt(0, T - 2);
    (*ids)[s] = 1;
    (*ids)[s + 1] = 2;
    (*labels)[s] = 1;      // B
    (*labels)[s + 1] = 2;  // I
    // Ambiguity: id 2 also appears outside entities.
    const int noise = r->NextInt(0, T - 1);
    if (noise != s && noise != s + 1) (*ids)[noise] = 2;
  };

  Rng data_rng(6);
  for (int step = 0; step < 500; ++step) {
    std::vector<int> ids, labels;
    make_seq(&data_rng, &ids, &labels);
    params.ZeroGrads();
    Mat emissions = out.Forward(emb.Forward(ids));
    Mat demissions;
    crf.NegLogLikelihood(emissions, labels, &demissions);
    emb.Backward(out.Backward(demissions));
    params.ClipGradNorm(5);
    adam.Step(&params);
  }

  // Decode accuracy on fresh sequences.
  int correct = 0, total = 0;
  Rng eval_rng(7);
  for (int i = 0; i < 50; ++i) {
    std::vector<int> ids, labels;
    make_seq(&eval_rng, &ids, &labels);
    auto pred = crf.Viterbi(out.Forward(emb.Forward(ids)));
    for (size_t t = 0; t < labels.size(); ++t) {
      ++total;
      if (pred[t] == labels[t]) ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

}  // namespace
}  // namespace emd
