// Parameterized property sweeps over the pipeline invariants:
//  * tokenizer offsets always reconstruct the source,
//  * incremental pooling == batch mean regardless of arrival order/batching,
//  * mention extractor outputs are sorted, non-overlapping, and all true
//    occurrences of registered candidates are covered,
//  * syntactic categories partition all mentions,
//  * Globalizer's full-mode output is a subset of extraction-mode output.

#include <gtest/gtest.h>

#include <set>

#include "core/candidate_base.h"
#include "core/ctrie.h"
#include "core/globalizer.h"
#include "core/mention_extractor.h"
#include "core/syntactic_embedder.h"
#include "mock_local_system.h"
#include "stream/datasets.h"
#include "stream/tweet_generator.h"
#include "text/tweet_tokenizer.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace emd {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededTest, TokenizerOffsetsReconstructArbitraryAscii) {
  Rng rng(GetParam());
  TweetTokenizer tokenizer;
  const std::string charset =
      "abcdefghijXYZ0129 @#:./!?'-()$%&*~  \t";
  for (int iter = 0; iter < 200; ++iter) {
    std::string text;
    const int len = rng.NextInt(0, 60);
    for (int i = 0; i < len; ++i) text += charset[rng.NextU64(charset.size())];
    auto tokens = tokenizer.Tokenize(text);
    size_t prev_end = 0;
    for (const auto& t : tokens) {
      ASSERT_FALSE(t.text.empty());
      ASSERT_GE(t.begin, prev_end);
      ASSERT_LE(t.end, text.size());
      ASSERT_LT(t.begin, t.end);
      EXPECT_EQ(text.substr(t.begin, t.end - t.begin), t.text);
      prev_end = t.end;
    }
  }
}

TEST_P(SeededTest, PoolingIsOrderAndBatchInvariant) {
  Rng rng(GetParam());
  const int n = rng.NextInt(2, 30);
  std::vector<Mat> embeddings;
  for (int i = 0; i < n; ++i) {
    Mat e(1, 5);
    e.InitGaussian(&rng, 1.f);
    embeddings.push_back(std::move(e));
  }
  auto pooled = [&](const std::vector<size_t>& order) {
    CandidateBase base;
    base.GetOrCreate(0, "x", 1);
    for (size_t i : order) base.AddMention(0, {}, embeddings[i]);
    return base.at(0).GlobalEmbedding();
  };
  std::vector<size_t> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  Mat forward = pooled(order);
  rng.Shuffle(&order);
  Mat shuffled = pooled(order);
  for (int j = 0; j < 5; ++j) EXPECT_NEAR(forward(0, j), shuffled(0, j), 1e-4);
}

TEST_P(SeededTest, ExtractorOutputsSortedNonOverlappingAndComplete) {
  Rng rng(GetParam());
  EntityCatalogOptions copt;
  copt.entities_per_topic = 80;
  copt.seed = GetParam() * 3 + 1;
  EntityCatalog catalog = EntityCatalog::Build(copt);
  TweetGeneratorOptions gopt;
  gopt.seed = GetParam() * 5 + 2;
  TweetGenerator gen(&catalog, Topic::kSports, gopt);

  CTrie trie;
  std::vector<AnnotatedTweet> tweets;
  for (int i = 0; i < 80; ++i) {
    tweets.push_back(gen.Next());
    for (const auto& g : tweets.back().gold) {
      trie.Insert(tweets.back().tokens, g.span);
    }
  }
  MentionExtractor extractor(&trie);
  for (const auto& tweet : tweets) {
    const auto mentions = extractor.Extract(tweet.tokens);
    size_t prev_end = 0;
    for (const auto& m : mentions) {
      ASSERT_GE(m.span.begin, prev_end) << "overlap or disorder";
      ASSERT_LT(m.span.begin, m.span.end);
      ASSERT_LE(m.span.end, tweet.tokens.size());
      ASSERT_GE(m.candidate_id, 0);
      prev_end = m.span.end;
    }
    // Completeness: every gold span that was registered as a candidate is
    // covered by some extracted mention (possibly a longer superstring).
    for (const auto& g : tweet.gold) {
      bool covered = false;
      for (const auto& m : mentions) {
        if (m.span.begin <= g.span.begin && m.span.end >= g.span.end) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "registered candidate occurrence missed: "
                           << SpanText(tweet.tokens, g.span);
    }
  }
}

TEST_P(SeededTest, SyntacticCategoriesPartitionMentions) {
  Rng rng(GetParam());
  EntityCatalogOptions copt;
  copt.entities_per_topic = 60;
  copt.seed = GetParam() * 7 + 3;
  EntityCatalog catalog = EntityCatalog::Build(copt);
  TweetGeneratorOptions gopt;
  gopt.seed = GetParam() * 11 + 4;
  TweetGenerator gen(&catalog, Topic::kHealth, gopt);
  int histogram[kNumSyntacticCategories] = {};
  for (int i = 0; i < 300; ++i) {
    AnnotatedTweet t = gen.Next();
    for (const auto& g : t.gold) {
      Mat e = SyntacticEmbedding(t.tokens, g.span);
      float sum = 0;
      int hot = -1;
      for (int j = 0; j < e.cols(); ++j) {
        sum += e(0, j);
        if (e(0, j) == 1.f) hot = j;
      }
      ASSERT_FLOAT_EQ(sum, 1.f);
      ASSERT_GE(hot, 0);
      ++histogram[hot];
    }
  }
  // The generator's noise model must exercise several categories.
  int used = 0;
  for (int c : histogram) used += c > 0 ? 1 : 0;
  EXPECT_GE(used, 4);
}

TEST_P(SeededTest, FullModeOutputIsSubsetOfExtractionMode) {
  Rng rng(GetParam());
  EntityCatalogOptions copt;
  copt.entities_per_topic = 60;
  copt.seed = GetParam() * 13 + 5;
  EntityCatalog catalog = EntityCatalog::Build(copt);
  DatasetSuiteOptions sopt;
  sopt.scale = 0.04;
  sopt.seed = GetParam();
  Dataset stream = BuildD1(catalog, sopt);

  // Mock local system: detect any capitalized unigram from the catalog plus
  // some junk words.
  std::vector<MockLocalSystem::Rule> rules;
  for (int id : catalog.TopicEntityIds(Topic::kPolitics)) {
    const Entity& e = catalog.entity(id);
    if (e.name_tokens.size() == 1) {
      rules.push_back({.phrase = {ToLowerAscii(e.name_tokens[0])},
                       .require_capitalized = true});
    }
    if (rules.size() >= 40) break;
  }
  auto run = [&](GlobalizerOptions::Mode mode, const EntityClassifier* clf) {
    MockLocalSystem mock(rules);
    GlobalizerOptions opt;
    opt.mode = mode;
    Globalizer g(&mock, nullptr, clf, opt);
    return g.Run(stream).value();
  };
  // A blunt classifier: everything ambiguous except clearly lowercase junk.
  EntityClassifier clf({.input_dim = 7});
  std::vector<ClassifierExample> examples;
  for (int i = 0; i < 100; ++i) {
    Mat pos(1, 6);
    pos(0, 0) = 1;
    examples.push_back({EntityClassifier::MakeFeatures(pos, 1), true});
    Mat neg(1, 6);
    neg(0, 4) = 1;
    examples.push_back({EntityClassifier::MakeFeatures(neg, 1), false});
  }
  clf.Train(examples, {.max_epochs = 50});

  GlobalizerOutput extraction = run(GlobalizerOptions::Mode::kMentionExtraction,
                                    nullptr);
  GlobalizerOutput full = run(GlobalizerOptions::Mode::kFull, &clf);
  ASSERT_EQ(extraction.mentions.size(), full.mentions.size());
  for (size_t i = 0; i < full.mentions.size(); ++i) {
    std::set<TokenSpan> ext(extraction.mentions[i].begin(),
                            extraction.mentions[i].end());
    for (const auto& span : full.mentions[i]) {
      EXPECT_TRUE(ext.count(span))
          << "full mode produced a mention extraction mode did not";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace emd
