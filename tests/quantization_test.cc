// Tests for the int8 quantized inference backend and the forward-pass
// planner (label: kernels): quantization round-trip and clamping, bitwise
// scalar/AVX2 int8 agreement, QuantizedLinear parity against fp32 within its
// analytic error bound, ragged-batch planner equivalence against the
// per-sequence forward (including empty and truncated sequences), the
// zero-allocation steady state of a warm planner pass, and the end-to-end
// int8-vs-fp32 F1 gate on a trained MiniBertweet.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "emd/mini_bertweet.h"
#include "eval/metrics.h"
#include "nn/kernels/kernels.h"
#include "nn/planner.h"
#include "nn/qlinear.h"
#include "nn/transformer.h"
#include "stream/datasets.h"
#include "stream/entity_catalog.h"
#include "util/cpuid.h"
#include "util/rng.h"

// Global allocation counter for the steady-state assertion. GCC cannot see
// that the replacement operator new/delete below are a matched malloc/free
// pair and warns at every inlined delete site.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
std::atomic<long> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace emd {
namespace {

using kernels::Avx2Int8Kernels;
using kernels::Int8Kernels;
using kernels::QuantizedBackend;
using kernels::ScalarInt8Kernels;

/// The AVX2 int8 backend to compare against, or nullptr on hosts without it.
const QuantizedBackend* SimdInt8() {
  const QuantizedBackend* avx2 = Avx2Int8Kernels();
  return (avx2 != nullptr && CpuHasAvx2Fma()) ? avx2 : nullptr;
}

Mat GaussianMat(int rows, int cols, float scale, uint64_t seed) {
  Rng rng(seed);
  Mat m(rows, cols);
  m.InitGaussian(&rng, scale);
  return m;
}

// ---------------------------------------------------------------------------
// Quantization round-trip.
// ---------------------------------------------------------------------------

TEST(Int8QuantizeTest, RoundTripWithinHalfStep) {
  const QuantizedBackend& q = ScalarInt8Kernels();
  for (int k : {1, 7, 16, 63, 255}) {
    const Mat a = GaussianMat(3, k, 2.f, 77 + k);
    std::vector<std::int8_t> codes(3 * k);
    std::vector<float> scales(3);
    q.quantize_rows(a.data(), 3, k, codes.data(), scales.data());
    for (int i = 0; i < 3; ++i) {
      float maxabs = 0.f;
      for (int j = 0; j < k; ++j) {
        maxabs = std::max(maxabs, std::fabs(a(i, j)));
      }
      EXPECT_FLOAT_EQ(scales[i], maxabs / 127.f);
      for (int j = 0; j < k; ++j) {
        const int code = codes[i * k + j];
        EXPECT_GE(code, -127);
        EXPECT_LE(code, 127);
        // Round-to-nearest: the dequantized value sits within half a step.
        EXPECT_LE(std::fabs(code * scales[i] - a(i, j)),
                  0.5f * scales[i] + 1e-6f);
      }
    }
  }
}

TEST(Int8QuantizeTest, ZeroRowGetsZeroScaleAndZeroCodes) {
  const QuantizedBackend& q = ScalarInt8Kernels();
  const int k = 33;
  std::vector<float> a(k, 0.f);
  std::vector<std::int8_t> codes(k, 1);
  std::vector<float> scales(1, 1.f);
  q.quantize_rows(a.data(), 1, k, codes.data(), scales.data());
  EXPECT_EQ(scales[0], 0.f);
  for (int j = 0; j < k; ++j) EXPECT_EQ(codes[j], 0);
}

// ---------------------------------------------------------------------------
// Scalar / AVX2 bit-identity: exact int32 accumulation plus an identical
// non-FMA dequant sequence make the two implementations bitwise equal.
// ---------------------------------------------------------------------------

TEST(Int8QuantizeTest, ScalarAndAvx2QuantizeBitIdentical) {
  const QuantizedBackend* simd = SimdInt8();
  if (simd == nullptr) GTEST_SKIP() << "no AVX2 int8 backend on this host";
  const QuantizedBackend& ref = ScalarInt8Kernels();
  for (int k : {1, 5, 16, 17, 64, 100, 255}) {
    const int m = 4;
    const Mat a = GaussianMat(m, k, 1.5f, 7000 + k);
    std::vector<std::int8_t> c0(m * k), c1(m * k);
    std::vector<float> s0(m), s1(m);
    ref.quantize_rows(a.data(), m, k, c0.data(), s0.data());
    simd->quantize_rows(a.data(), m, k, c1.data(), s1.data());
    EXPECT_EQ(0, std::memcmp(c0.data(), c1.data(), c0.size())) << "k=" << k;
    EXPECT_EQ(0, std::memcmp(s0.data(), s1.data(), m * sizeof(float)))
        << "k=" << k;
  }
}

TEST(Int8QuantizeTest, ScalarAndAvx2QGemmBitIdentical) {
  const QuantizedBackend* simd = SimdInt8();
  if (simd == nullptr) GTEST_SKIP() << "no AVX2 int8 backend on this host";
  const QuantizedBackend& ref = ScalarInt8Kernels();
  struct Shape {
    int m, k, n;
  };
  for (const Shape sh : std::vector<Shape>{
           {1, 1, 1}, {3, 17, 5}, {2, 16, 4}, {5, 33, 7}, {17, 64, 13},
           {8, 100, 31}}) {
    Rng rng(900 + sh.k * 31 + sh.n);
    std::vector<std::int8_t> a8(sh.m * sh.k), wt8(sh.n * sh.k);
    for (auto& v : a8) v = static_cast<std::int8_t>(rng.NextInt(-127, 127));
    for (auto& v : wt8) v = static_cast<std::int8_t>(rng.NextInt(-127, 127));
    std::vector<float> a_scales(sh.m), w_scales(sh.n), bias(sh.n);
    for (auto& v : a_scales) v = rng.NextFloat(0.001f, 0.1f);
    for (auto& v : w_scales) v = rng.NextFloat(0.001f, 0.1f);
    for (auto& v : bias) v = rng.NextFloat(-1.f, 1.f);
    std::vector<float> c0(sh.m * sh.n), c1(sh.m * sh.n);
    ref.qgemm(a8.data(), a_scales.data(), wt8.data(), w_scales.data(),
              bias.data(), c0.data(), sh.m, sh.k, sh.n);
    simd->qgemm(a8.data(), a_scales.data(), wt8.data(), w_scales.data(),
                bias.data(), c1.data(), sh.m, sh.k, sh.n);
    EXPECT_EQ(0, std::memcmp(c0.data(), c1.data(), c0.size() * sizeof(float)))
        << sh.m << "x" << sh.k << "x" << sh.n;
    // And the nullptr-bias variant.
    ref.qgemm(a8.data(), a_scales.data(), wt8.data(), w_scales.data(), nullptr,
              c0.data(), sh.m, sh.k, sh.n);
    simd->qgemm(a8.data(), a_scales.data(), wt8.data(), w_scales.data(),
                nullptr, c1.data(), sh.m, sh.k, sh.n);
    EXPECT_EQ(0, std::memcmp(c0.data(), c1.data(), c0.size() * sizeof(float)))
        << sh.m << "x" << sh.k << "x" << sh.n << " (no bias)";
  }
}

TEST(Int8QuantizeTest, DispatchReturnsKnownInt8Backend) {
  const QuantizedBackend& q = Int8Kernels();
  EXPECT_TRUE(std::string(q.name) == "int8-scalar" ||
              std::string(q.name) == "int8-avx2");
  EXPECT_EQ(&q, &Int8Kernels());  // stable across calls
}

// ---------------------------------------------------------------------------
// QuantizedLinear: fp32 parity within the analytic per-element bound.
// ---------------------------------------------------------------------------

TEST(QuantizedLinearTest, ParityWithinErrorBound) {
  struct Shape {
    int in, out;
  };
  for (const Shape sh : std::vector<Shape>{{16, 32}, {64, 6}, {33, 17}}) {
    const Mat w = GaussianMat(sh.in, sh.out, 0.3f, 50 + sh.in);
    const Mat b = GaussianMat(1, sh.out, 0.2f, 60 + sh.out);
    QuantizedLinear q;
    EXPECT_FALSE(q.packed());
    q.Pack(w, b);
    ASSERT_TRUE(q.packed());
    EXPECT_EQ(q.in_dim(), sh.in);
    EXPECT_EQ(q.out_dim(), sh.out);

    const Mat x = GaussianMat(5, sh.in, 1.f, 70 + sh.in);
    Mat expect = MatMul(x, w);
    AddRowBroadcastInPlace(&expect, b);

    QuantizedLinear::Scratch qs;
    Mat got;
    q.Apply(x, &qs, &got);
    ASSERT_EQ(got.rows(), 5);
    ASSERT_EQ(got.cols(), sh.out);
    for (int i = 0; i < x.rows(); ++i) {
      float maxabs = 0.f;
      for (int j = 0; j < sh.in; ++j) {
        maxabs = std::max(maxabs, std::fabs(x(i, j)));
      }
      const float budget = q.ErrorBound(maxabs);
      ASSERT_GT(budget, 0.f);
      for (int j = 0; j < sh.out; ++j) {
        EXPECT_LE(std::fabs(got(i, j) - expect(i, j)), budget)
            << "(" << i << ", " << j << ") of " << sh.in << "->" << sh.out;
      }
    }
  }
}

TEST(QuantizedLinearTest, QuantizedRowsMatchSingleRowApplication) {
  // Row invariance: applying the packed layer to a many-row batch must give
  // the same bits per row as applying it to each row alone — the property
  // that lets the serial and batched pipelines share one quantized path.
  const Mat w = GaussianMat(24, 12, 0.4f, 81);
  const Mat b = GaussianMat(1, 12, 0.2f, 82);
  QuantizedLinear q;
  q.Pack(w, b);
  const Mat x = GaussianMat(7, 24, 1.2f, 83);
  QuantizedLinear::Scratch qs;
  Mat batched;
  q.Apply(x, &qs, &batched);
  for (int i = 0; i < x.rows(); ++i) {
    Mat row(1, 24);
    std::memcpy(row.row(0), x.row(i), sizeof(float) * 24);
    Mat single;
    q.Apply(row, &qs, &single);
    EXPECT_EQ(0, std::memcmp(single.row(0), batched.row(i),
                             sizeof(float) * 12))
        << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// Forward-pass planner: ragged-batch equivalence and steady-state
// allocations.
// ---------------------------------------------------------------------------

TEST(PlannerTest, RaggedPackOffsets) {
  RaggedPack pack;
  pack.Clear();
  pack.Add(5);
  pack.Add(0);
  pack.Add(3);
  EXPECT_EQ(pack.num_seqs(), 3);
  EXPECT_EQ(pack.total_rows(), 8);
  EXPECT_EQ(pack.begin(1), 5);
  EXPECT_EQ(pack.len(1), 0);
  EXPECT_EQ(pack.begin(2), 5);
  EXPECT_EQ(pack.end(2), 8);
}

TEST(PlannerTest, BatchedEncoderLayerMatchesPerSequenceForward) {
  Rng rng(17);
  TransformerEncoderLayer layer(32, 4, 64, 0.1f, &rng, "t");
  const std::vector<int> lens = {5, 0, 1, 17, 2};
  RaggedPack pack;
  pack.Clear();
  int total = 0;
  for (int len : lens) {
    pack.Add(len);
    total += len;
  }
  const Mat x = GaussianMat(total, 32, 1.f, 21);

  ForwardArena arena;
  Mat out;
  layer.ApplyBatched(x, pack, &arena, 0, &out);
  ASSERT_EQ(out.rows(), total);
  ASSERT_EQ(out.cols(), 32);

  Rng drop_rng(1);  // unused: inference-mode dropout is the identity
  for (int s = 0; s < pack.num_seqs(); ++s) {
    const int T = pack.len(s);
    if (T == 0) continue;
    Mat xs(T, 32);
    std::memcpy(xs.data(), x.row(pack.begin(s)), sizeof(float) * T * 32);
    const Mat ys = layer.Forward(xs, /*training=*/false, &drop_rng);
    EXPECT_EQ(0, std::memcmp(ys.data(), out.row(pack.begin(s)),
                             sizeof(float) * T * 32))
        << "sequence " << s << " diverges from the per-sequence forward";
  }
}

TEST(PlannerTest, WarmApplyBatchedIsAllocationFree) {
  Rng rng(29);
  TransformerEncoderLayer layer(32, 4, 64, 0.f, &rng, "t");
  RaggedPack pack;
  pack.Clear();
  pack.Add(9);
  pack.Add(14);
  const Mat x = GaussianMat(23, 32, 1.f, 31);
  ForwardArena arena;
  Mat out;
  layer.ApplyBatched(x, pack, &arena, 0, &out);  // cold: arena grows
  layer.ApplyBatched(x, pack, &arena, 0, &out);  // warm once more
  const long before = g_allocations.load(std::memory_order_relaxed);
  layer.ApplyBatched(x, pack, &arena, 0, &out);
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after)
      << "steady-state planner pass should not touch the heap";
}

TEST(PlannerTest, WarmQuantizedApplyBatchedIsAllocationFree) {
  Rng rng(33);
  TransformerEncoderLayer layer(32, 4, 64, 0.f, &rng, "t");
  layer.PrepareQuantized();
  RaggedPack pack;
  pack.Clear();
  pack.Add(6);
  pack.Add(11);
  const Mat x = GaussianMat(17, 32, 1.f, 35);
  ForwardArena arena;
  Mat out;
  layer.ApplyBatched(x, pack, &arena, 0, &out);
  layer.ApplyBatched(x, pack, &arena, 0, &out);
  const long before = g_allocations.load(std::memory_order_relaxed);
  layer.ApplyBatched(x, pack, &arena, 0, &out);
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after);
}

// ---------------------------------------------------------------------------
// MiniBertweet: batched inference vs per-tweet, fp32 bit-identity and the
// int8 end-to-end F1 gate.
// ---------------------------------------------------------------------------

struct TinyWorld {
  EntityCatalog catalog;
  Dataset train;
  Dataset test;
  MiniBertweetSystem net;

  static TinyWorld* Make() {
    EntityCatalogOptions copt;
    copt.entities_per_topic = 60;
    copt.seed = 5;
    auto* w = new TinyWorld{EntityCatalog::Build(copt), {}, {}, MakeNet()};
    w->train = BuildTrainingCorpus(w->catalog, 200, 11);
    DatasetSuiteOptions sopt;
    sopt.scale = 0.1;
    w->test = BuildD1(w->catalog, sopt);
    w->net.Train(w->train, {.epochs = 2});
    return w;
  }

  static MiniBertweetSystem MakeNet() {
    MiniBertweetOptions opt;
    opt.d_model = 32;
    opt.num_heads = 2;
    opt.d_ff = 64;
    opt.num_layers = 1;
    return MiniBertweetSystem(opt);
  }
};

TinyWorld& World() {
  static TinyWorld* w = TinyWorld::Make();
  return *w;
}

TEST(MiniBertweetBatchTest, BatchedMatchesPerTweetBitwise) {
  if (kernels::Int8Enabled()) {
    GTEST_SKIP() << "bitwise batched-vs-serial is the fp32 contract; under "
                    "EMD_BACKEND=int8 the batched path quantizes on purpose";
  }
  TinyWorld& w = World();
  ASSERT_TRUE(w.net.batch_capable());

  // A ragged batch: normal tweets, an empty tweet, a single-token tweet, and
  // a truncation-length tweet (more pieces than max_positions).
  std::vector<std::vector<Token>> tweets;
  for (int i = 0; i < 6; ++i) tweets.push_back(w.test.tweets[i].tokens);
  tweets.push_back({});
  tweets.push_back({w.test.tweets[0].tokens[0]});
  std::vector<Token> longtweet;
  while (longtweet.size() < 150) {
    for (const Token& t : w.test.tweets[1].tokens) longtweet.push_back(t);
  }
  tweets.push_back(longtweet);

  std::vector<const std::vector<Token>*> views;
  for (const auto& t : tweets) views.push_back(&t);
  ForwardArena arena;
  std::vector<LocalEmdResult> batched;
  w.net.ProcessBatched(views, &arena, &batched);
  ASSERT_EQ(batched.size(), tweets.size());

  for (size_t i = 0; i < tweets.size(); ++i) {
    const LocalEmdResult serial = w.net.Process(tweets[i]);
    EXPECT_EQ(serial.mentions, batched[i].mentions) << "tweet " << i;
    ASSERT_EQ(serial.token_embeddings.rows(), batched[i].token_embeddings.rows())
        << "tweet " << i;
    ASSERT_EQ(serial.token_embeddings.cols(), batched[i].token_embeddings.cols())
        << "tweet " << i;
    if (!serial.token_embeddings.empty()) {
      EXPECT_EQ(0, std::memcmp(serial.token_embeddings.data(),
                               batched[i].token_embeddings.data(),
                               sizeof(float) * serial.token_embeddings.size()))
          << "tweet " << i << " embeddings diverge";
    }
  }
}

double BatchedF1(const Dataset& data, MiniBertweetSystem* net) {
  std::vector<std::vector<TokenSpan>> pred;
  ForwardArena arena;
  std::vector<const std::vector<Token>*> views;
  std::vector<LocalEmdResult> results;
  for (size_t lo = 0; lo < data.tweets.size(); lo += 16) {
    const size_t hi = std::min(data.tweets.size(), lo + 16);
    views.clear();
    for (size_t i = lo; i < hi; ++i) views.push_back(&data.tweets[i].tokens);
    net->ProcessBatched(views, &arena, &results);
    for (auto& r : results) pred.push_back(std::move(r.mentions));
  }
  return EvaluateMentions(data, pred).f1;
}

TEST(MiniBertweetBatchTest, Int8F1WithinHalfPointOfFp32) {
  TinyWorld& w = World();
  std::vector<std::vector<TokenSpan>> fp32_pred;
  for (const auto& tweet : w.test.tweets) {
    fp32_pred.push_back(w.net.Process(tweet.tokens).mentions);
  }
  const double fp32_f1 = EvaluateMentions(w.test, fp32_pred).f1;

  // fp32 batched must reproduce the serial F1 exactly; int8 batched must sit
  // within the 0.5-point budget of the acceptance gate. Under an ambient
  // EMD_BACKEND=int8 Train() already packed, so the fp32-batched leg is
  // skipped (serial Process stays fp32 either way).
  if (!kernels::Int8Enabled()) {
    const double fp32_batched_f1 = BatchedF1(w.test, &w.net);
    EXPECT_DOUBLE_EQ(fp32_f1, fp32_batched_f1);
  }

  w.net.PrepareQuantizedInference();
  const double int8_f1 = BatchedF1(w.test, &w.net);
  EXPECT_NEAR(int8_f1, fp32_f1, 0.005);
}

}  // namespace
}  // namespace emd
