#include <gtest/gtest.h>

#include <cmath>

#include "nn/crf.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"
#include "nn/params.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace emd {
namespace {

TEST(MatTest, ConstructionAndAccess) {
  Mat m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  m.at(1, 2) = 5.f;
  EXPECT_FLOAT_EQ(m(1, 2), 5.f);
}

TEST(MatTest, MatMulHandValues) {
  Mat a(2, 3, {1, 2, 3, 4, 5, 6});
  Mat b(3, 2, {7, 8, 9, 10, 11, 12});
  Mat c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58);
  EXPECT_FLOAT_EQ(c(0, 1), 64);
  EXPECT_FLOAT_EQ(c(1, 0), 139);
  EXPECT_FLOAT_EQ(c(1, 1), 154);
}

TEST(MatTest, MatMulVariantsAgree) {
  Rng rng(3);
  Mat a(4, 5), b(5, 3);
  a.InitGaussian(&rng, 1.f);
  b.InitGaussian(&rng, 1.f);
  Mat c1 = MatMul(a, b);
  Mat c2 = MatMulBT(a, Transpose(b));
  Mat c3 = MatMulAT(Transpose(a), b);
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1.data()[i], c2.data()[i], 1e-4);
    EXPECT_NEAR(c1.data()[i], c3.data()[i], 1e-4);
  }
}

TEST(MatTest, TransposeInvolution) {
  Rng rng(4);
  Mat a(3, 5);
  a.InitGaussian(&rng, 1.f);
  Mat t = Transpose(Transpose(a));
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a.data()[i], t.data()[i]);
}

TEST(MatTest, RowOps) {
  Mat a(2, 3, {1, 2, 3, 4, 5, 6});
  Mat s = SumRows(a);
  EXPECT_FLOAT_EQ(s(0, 0), 5);
  EXPECT_FLOAT_EQ(s(0, 2), 9);
  Mat m = MeanRows(a);
  EXPECT_FLOAT_EQ(m(0, 1), 3.5f);
  Mat bias(1, 3, {10, 20, 30});
  Mat ab = AddRowBroadcast(a, bias);
  EXPECT_FLOAT_EQ(ab(1, 0), 14);
}

TEST(MatTest, ConcatAndSlice) {
  Mat a(2, 2, {1, 2, 3, 4});
  Mat b(2, 1, {5, 6});
  Mat c = ConcatCols(a, b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c(0, 2), 5);
  Mat s = SliceCols(c, 1, 3);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_FLOAT_EQ(s(1, 0), 4);
  EXPECT_FLOAT_EQ(s(1, 1), 6);
}

TEST(MatTest, StackRows) {
  Mat r1(1, 2, {1, 2});
  Mat r2(1, 2, {3, 4});
  Mat s = StackRows({r1, r2});
  EXPECT_EQ(s.rows(), 2);
  EXPECT_FLOAT_EQ(s(1, 1), 4);
}

TEST(MatTest, LogSumExpStable) {
  std::vector<float> x = {1000.f, 1000.f};
  EXPECT_NEAR(LogSumExp(x.data(), 2), 1000.0 + std::log(2.0), 1e-3);
  std::vector<float> y = {-1000.f, 0.f};
  EXPECT_NEAR(LogSumExp(y.data(), 2), 0.0, 1e-6);
}

TEST(MatTest, SoftmaxRows) {
  Mat a(1, 3, {1, 2, 3});
  SoftmaxRowsInPlace(&a);
  double sum = a(0, 0) + a(0, 1) + a(0, 2);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(a(0, 2), a(0, 1));
}

TEST(MatTest, CosineSimilarity) {
  Mat a(1, 2, {1, 0});
  Mat b(1, 2, {0, 1});
  Mat c(1, 2, {2, 0});
  EXPECT_NEAR(CosineSimilarity(a, b), 0.f, 1e-6);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.f, 1e-6);
  Mat z(1, 2);
  EXPECT_FLOAT_EQ(CosineSimilarity(a, z), 0.f);
}

TEST(MatTest, NormAndScale) {
  Mat a(1, 3, {3, 0, 4});
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
  a.Scale(2.f);
  EXPECT_FLOAT_EQ(a(0, 2), 8.f);
  Mat b(1, 3, {1, 1, 1});
  a.AddScaled(b, -1.f);
  EXPECT_FLOAT_EQ(a(0, 0), 5.f);
}

TEST(ParamSetTest, GradClipping) {
  Mat w(1, 2), g(1, 2, {3, 4});
  ParamSet params;
  params.Register("w", &w, &g);
  EXPECT_DOUBLE_EQ(params.GradNorm(), 5.0);
  params.ClipGradNorm(1.0);
  EXPECT_NEAR(params.GradNorm(), 1.0, 1e-5);
  params.ZeroGrads();
  EXPECT_DOUBLE_EQ(params.GradNorm(), 0.0);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  // minimize (w - 3)^2 via gradient 2(w-3).
  Mat w(1, 1), g(1, 1);
  ParamSet params;
  params.Register("w", &w, &g);
  SgdOptimizer sgd(0.1f);
  for (int i = 0; i < 200; ++i) {
    g(0, 0) = 2.f * (w(0, 0) - 3.f);
    sgd.Step(&params);
    params.ZeroGrads();
  }
  EXPECT_NEAR(w(0, 0), 3.f, 1e-3);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Mat w(1, 2), g(1, 2);
  ParamSet params;
  params.Register("w", &w, &g);
  AdamOptimizer adam(0.05f);
  for (int i = 0; i < 500; ++i) {
    g(0, 0) = 2.f * (w(0, 0) - 1.f);
    g(0, 1) = 2.f * (w(0, 1) + 2.f);
    adam.Step(&params);
    params.ZeroGrads();
  }
  EXPECT_NEAR(w(0, 0), 1.f, 1e-2);
  EXPECT_NEAR(w(0, 1), -2.f, 1e-2);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(5);
  Mat w1(3, 4), g1(3, 4), w2(1, 2), g2(1, 2);
  w1.InitGaussian(&rng, 1.f);
  w2.InitGaussian(&rng, 1.f);
  ParamSet params;
  params.Register("layer.w", &w1, &g1);
  params.Register("layer.b", &w2, &g2);
  const std::string path = "/tmp/emd_serialize_test.bin";
  ASSERT_TRUE(SaveParams(params, path).ok());

  Mat w1b(3, 4), w2b(1, 2);
  ParamSet loaded;
  loaded.Register("layer.w", &w1b, &g1);
  loaded.Register("layer.b", &w2b, &g2);
  ASSERT_TRUE(LoadParams(&loaded, path).ok());
  for (size_t i = 0; i < w1.size(); ++i) EXPECT_FLOAT_EQ(w1.data()[i], w1b.data()[i]);
  for (size_t i = 0; i < w2.size(); ++i) EXPECT_FLOAT_EQ(w2.data()[i], w2b.data()[i]);
}

TEST(SerializeTest, RejectsNameMismatch) {
  Mat w(1, 1), g(1, 1);
  ParamSet params;
  params.Register("a", &w, &g);
  const std::string path = "/tmp/emd_serialize_test2.bin";
  ASSERT_TRUE(SaveParams(params, path).ok());
  ParamSet other;
  other.Register("b", &w, &g);
  EXPECT_TRUE(LoadParams(&other, path).IsCorruption());
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Mat w(2, 2), g(2, 2);
  ParamSet params;
  params.Register("a", &w, &g);
  const std::string path = "/tmp/emd_serialize_test3.bin";
  ASSERT_TRUE(SaveParams(params, path).ok());
  Mat w2(1, 2), g2(1, 2);
  ParamSet other;
  other.Register("a", &w2, &g2);
  EXPECT_TRUE(LoadParams(&other, path).IsCorruption());
}

TEST(CrfTest, ViterbiPrefersHighEmissions) {
  Rng rng(6);
  LinearChainCrf crf(3, &rng);
  Mat e(4, 3);
  e(0, 1) = 5;
  e(1, 2) = 5;
  e(2, 0) = 5;
  e(3, 0) = 5;
  auto path = crf.Viterbi(e);
  EXPECT_EQ(path, (std::vector<int>{1, 2, 0, 0}));
}

TEST(CrfTest, MarginalsSumToOne) {
  Rng rng(7);
  LinearChainCrf crf(4, &rng);
  Mat e(6, 4);
  e.InitGaussian(&rng, 1.f);
  Mat m = crf.Marginals(e);
  for (int t = 0; t < m.rows(); ++t) {
    double s = 0;
    for (int j = 0; j < m.cols(); ++j) s += m(t, j);
    EXPECT_NEAR(s, 1.0, 1e-4);
  }
}

}  // namespace
}  // namespace emd
