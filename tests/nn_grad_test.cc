// Finite-difference gradient checks for every layer of the neural substrate.
// Each check perturbs parameters (and inputs) and compares the analytic
// gradient against (f(x+h) - f(x-h)) / 2h on a scalar loss.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/char_cnn.h"
#include "nn/crf.h"
#include "nn/embedding.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/lstm.h"
#include "nn/matrix.h"
#include "nn/params.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace emd {
namespace {

// Finite differences divide forward-pass error by 2h, so the ~1e-7-accurate
// vectorized exp/tanh approximations would read as percent-level gradient
// noise. Pin the exact scalar kernels before the dispatcher's one-time choice.
const bool kForceScalarKernels = [] {
  setenv("EMD_FORCE_SCALAR", "1", /*overwrite=*/1);
  return true;
}();

// Scalar loss used by all checks: weighted sum of outputs, dL/dy = weights.
struct ScalarLoss {
  explicit ScalarLoss(int rows, int cols, uint64_t seed = 99) : w(rows, cols) {
    Rng rng(seed);
    w.InitGaussian(&rng, 1.f);
  }
  double Value(const Mat& y) const {
    EMD_CHECK(y.SameShape(w));
    double s = 0;
    for (size_t i = 0; i < y.size(); ++i) s += double(y.data()[i]) * w.data()[i];
    return s;
  }
  Mat Grad() const { return w; }
  Mat w;
};

constexpr double kEps = 1e-3;
constexpr double kTol = 2e-2;  // relative tolerance (float32 substrate)

void ExpectClose(double analytic, double numeric, const std::string& what,
                 double tol = kTol) {
  // Gradients that are exactly zero analytically (e.g. the K-projection bias
  // of softmax attention) read as float noise numerically.
  if (std::fabs(analytic) < 5e-5 && std::fabs(numeric) < 5e-5) return;
  const double denom = std::max({std::fabs(analytic), std::fabs(numeric), 1e-4});
  EXPECT_LT(std::fabs(analytic - numeric) / denom, tol)
      << what << ": analytic " << analytic << " vs numeric " << numeric;
}

// Checks dL/dparam for every parameter entry (sampled) of a module.
// `forward` must run the full forward pass and return the loss.
void CheckParamGrads(ParamSet* params, const std::function<double()>& forward,
                     const std::function<void()>& backward,
                     int samples_per_param = 4, double tol = kTol) {
  params->ZeroGrads();
  forward();
  backward();
  Rng rng(4242);
  for (const auto& p : params->params()) {
    for (int s = 0; s < samples_per_param; ++s) {
      const size_t i = rng.NextU64(p.value->size());
      const float orig = p.value->data()[i];
      p.value->data()[i] = orig + static_cast<float>(kEps);
      const double up = forward();
      p.value->data()[i] = orig - static_cast<float>(kEps);
      const double down = forward();
      p.value->data()[i] = orig;
      const double numeric = (up - down) / (2 * kEps);
      ExpectClose(p.grad->data()[i], numeric, p.name + "[" + std::to_string(i) + "]",
                  tol);
    }
  }
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear lin(5, 4, &rng);
  Mat x(3, 5);
  x.InitGaussian(&rng, 1.f);
  ScalarLoss loss(3, 4);
  ParamSet params;
  lin.CollectParams(&params);

  Mat dx_analytic;
  auto forward = [&] { return loss.Value(lin.Forward(x)); };
  auto backward = [&] { dx_analytic = lin.Backward(loss.Grad()); };
  CheckParamGrads(&params, forward, backward);

  // Input gradient check.
  for (int i : {0, 7, 14}) {
    const float orig = x.data()[i];
    x.data()[i] = orig + static_cast<float>(kEps);
    const double up = forward();
    x.data()[i] = orig - static_cast<float>(kEps);
    const double down = forward();
    x.data()[i] = orig;
    ExpectClose(dx_analytic.data()[i], (up - down) / (2 * kEps), "dx");
  }
}

TEST(GradCheck, Embedding) {
  Rng rng(2);
  Embedding emb(10, 4, &rng);
  std::vector<int> ids = {3, 7, 3, 2};
  ScalarLoss loss(4, 4);
  ParamSet params;
  emb.CollectParams(&params);
  auto forward = [&] { return loss.Value(emb.Forward(ids)); };
  auto backward = [&] { emb.Backward(loss.Grad()); };
  CheckParamGrads(&params, forward, backward, 8);
}

TEST(GradCheck, Activations) {
  Rng rng(3);
  Mat x(2, 6);
  x.InitGaussian(&rng, 1.f);
  ScalarLoss loss(2, 6);

  ReluLayer relu;
  auto fr = [&] { return loss.Value(relu.Forward(x)); };
  fr();
  Mat dxr = relu.Backward(loss.Grad());
  SigmoidLayer sig;
  auto fs = [&] { return loss.Value(sig.Forward(x)); };
  fs();
  Mat dxs = sig.Backward(loss.Grad());
  TanhLayer tanh_layer;
  auto ft = [&] { return loss.Value(tanh_layer.Forward(x)); };
  ft();
  Mat dxt = tanh_layer.Backward(loss.Grad());

  for (int i : {1, 5, 10}) {
    const float orig = x.data()[i];
    auto numeric = [&](auto f) {
      x.data()[i] = orig + static_cast<float>(kEps);
      const double up = f();
      x.data()[i] = orig - static_cast<float>(kEps);
      const double down = f();
      x.data()[i] = orig;
      return (up - down) / (2 * kEps);
    };
    ExpectClose(dxs.data()[i], numeric(fs), "sigmoid dx");
    ExpectClose(dxt.data()[i], numeric(ft), "tanh dx");
    // ReLU is non-differentiable at 0; inputs are generic so fine.
    ExpectClose(dxr.data()[i], numeric(fr), "relu dx");
  }
}

TEST(GradCheck, CharCnnSingle) {
  Rng rng(4);
  CharCnn cnn(3, 5, 2, &rng);
  Mat x(6, 3);
  x.InitGaussian(&rng, 1.f);
  ScalarLoss loss(1, 5);
  ParamSet params;
  cnn.CollectParams(&params);
  auto forward = [&] { return loss.Value(cnn.Forward(x)); };
  auto backward = [&] { cnn.Backward(loss.Grad()); };
  CheckParamGrads(&params, forward, backward);
}

TEST(GradCheck, CharCnnBatch) {
  Rng rng(5);
  CharCnn cnn(3, 4, 3, &rng);
  Mat chars(9, 3);  // tokens of lengths 4, 2, 3
  chars.InitGaussian(&rng, 1.f);
  std::vector<int> lengths = {4, 2, 3};
  ScalarLoss loss(3, 4);
  ParamSet params;
  cnn.CollectParams(&params);
  Mat dchars;
  auto forward = [&] { return loss.Value(cnn.ForwardBatch(chars, lengths)); };
  auto backward = [&] { dchars = cnn.BackwardBatch(loss.Grad()); };
  CheckParamGrads(&params, forward, backward);
  for (int i : {0, 10, 20}) {
    const float orig = chars.data()[i];
    chars.data()[i] = orig + static_cast<float>(kEps);
    const double up = forward();
    chars.data()[i] = orig - static_cast<float>(kEps);
    const double down = forward();
    chars.data()[i] = orig;
    ExpectClose(dchars.data()[i], (up - down) / (2 * kEps), "dchars");
  }
}

TEST(GradCheck, LstmForwardAndReverse) {
  for (bool reverse : {false, true}) {
    Rng rng(6);
    Lstm lstm(4, 3, &rng);
    Mat x(5, 4);
    x.InitGaussian(&rng, 1.f);
    ScalarLoss loss(5, 3);
    ParamSet params;
    lstm.CollectParams(&params);
    Mat dx;
    auto forward = [&] { return loss.Value(lstm.Forward(x, reverse)); };
    auto backward = [&] { dx = lstm.Backward(loss.Grad()); };
    CheckParamGrads(&params, forward, backward);
    for (int i : {0, 9, 19}) {
      const float orig = x.data()[i];
      x.data()[i] = orig + static_cast<float>(kEps);
      const double up = forward();
      x.data()[i] = orig - static_cast<float>(kEps);
      const double down = forward();
      x.data()[i] = orig;
      ExpectClose(dx.data()[i], (up - down) / (2 * kEps),
                  reverse ? "lstm-rev dx" : "lstm dx");
    }
  }
}

TEST(GradCheck, BiLstm) {
  Rng rng(7);
  BiLstm bilstm(3, 2, &rng);
  Mat x(4, 3);
  x.InitGaussian(&rng, 1.f);
  ScalarLoss loss(4, 4);
  ParamSet params;
  bilstm.CollectParams(&params);
  Mat dx;
  auto forward = [&] { return loss.Value(bilstm.Forward(x)); };
  auto backward = [&] { dx = bilstm.Backward(loss.Grad()); };
  CheckParamGrads(&params, forward, backward, 3);
  for (int i : {2, 7}) {
    const float orig = x.data()[i];
    x.data()[i] = orig + static_cast<float>(kEps);
    const double up = forward();
    x.data()[i] = orig - static_cast<float>(kEps);
    const double down = forward();
    x.data()[i] = orig;
    ExpectClose(dx.data()[i], (up - down) / (2 * kEps), "bilstm dx");
  }
}

TEST(GradCheck, LayerNorm) {
  Rng rng(8);
  LayerNorm ln(6);
  Mat x(3, 6);
  x.InitGaussian(&rng, 1.f);
  ScalarLoss loss(3, 6);
  ParamSet params;
  ln.CollectParams(&params);
  Mat dx;
  auto forward = [&] { return loss.Value(ln.Forward(x)); };
  auto backward = [&] { dx = ln.Backward(loss.Grad()); };
  CheckParamGrads(&params, forward, backward);
  for (int i : {0, 8, 17}) {
    const float orig = x.data()[i];
    x.data()[i] = orig + static_cast<float>(kEps);
    const double up = forward();
    x.data()[i] = orig - static_cast<float>(kEps);
    const double down = forward();
    x.data()[i] = orig;
    ExpectClose(dx.data()[i], (up - down) / (2 * kEps), "layernorm dx");
  }
}

TEST(GradCheck, MultiHeadSelfAttention) {
  Rng rng(9);
  MultiHeadSelfAttention mhsa(8, 2, &rng);
  Mat x(4, 8);
  x.InitGaussian(&rng, 0.5f);
  ScalarLoss loss(4, 8);
  ParamSet params;
  mhsa.CollectParams(&params);
  Mat dx;
  auto forward = [&] { return loss.Value(mhsa.Forward(x)); };
  auto backward = [&] { dx = mhsa.Backward(loss.Grad()); };
  CheckParamGrads(&params, forward, backward, 3);
  for (int i : {0, 13, 31}) {
    const float orig = x.data()[i];
    x.data()[i] = orig + static_cast<float>(kEps);
    const double up = forward();
    x.data()[i] = orig - static_cast<float>(kEps);
    const double down = forward();
    x.data()[i] = orig;
    ExpectClose(dx.data()[i], (up - down) / (2 * kEps), "mhsa dx");
  }
}

TEST(GradCheck, TransformerEncoderLayer) {
  Rng rng(10);
  TransformerEncoderLayer enc(8, 2, 16, /*dropout=*/0.f, &rng);
  Mat x(3, 8);
  x.InitGaussian(&rng, 0.5f);
  ScalarLoss loss(3, 8);
  ParamSet params;
  enc.CollectParams(&params);
  Mat dx;
  auto forward = [&] { return loss.Value(enc.Forward(x, /*training=*/false, &rng)); };
  auto backward = [&] { dx = enc.Backward(loss.Grad()); };
  // float32 noise accumulates through the attention+LN+FFN composite;
  // gradients agree to ~3 significant figures.
  CheckParamGrads(&params, forward, backward, 2, /*tol=*/0.06);
  for (int i : {1, 12, 23}) {
    const float orig = x.data()[i];
    x.data()[i] = orig + static_cast<float>(kEps);
    const double up = forward();
    x.data()[i] = orig - static_cast<float>(kEps);
    const double down = forward();
    x.data()[i] = orig;
    ExpectClose(dx.data()[i], (up - down) / (2 * kEps), "transformer dx", 0.06);
  }
}

TEST(GradCheck, CrfNegLogLikelihood) {
  Rng rng(11);
  LinearChainCrf crf(3, &rng);
  Mat emissions(5, 3);
  emissions.InitGaussian(&rng, 1.f);
  std::vector<int> gold = {0, 1, 2, 1, 0};
  ParamSet params;
  crf.CollectParams(&params);

  Mat demissions;
  auto forward = [&] {
    Mat unused;
    // NLL accumulates into the CRF's grads; for a pure forward value, use a
    // scratch CRF state by zeroing after. Simpler: capture value, re-zero.
    ParamSet tmp;
    crf.CollectParams(&tmp);
    tmp.ZeroGrads();
    return crf.NegLogLikelihood(emissions, gold, &unused);
  };
  params.ZeroGrads();
  const double base = crf.NegLogLikelihood(emissions, gold, &demissions);
  EXPECT_GT(base, 0);

  // Emission gradients.
  for (int i : {0, 4, 9, 14}) {
    const float orig = emissions.data()[i];
    emissions.data()[i] = orig + static_cast<float>(kEps);
    const double up = forward();
    emissions.data()[i] = orig - static_cast<float>(kEps);
    const double down = forward();
    emissions.data()[i] = orig;
    ExpectClose(demissions.data()[i], (up - down) / (2 * kEps), "crf demissions");
  }
  // Transition/start/end gradients (captured from the base call).
  Rng sample_rng(12);
  for (const auto& p : params.params()) {
    for (int s = 0; s < 4; ++s) {
      const size_t i = sample_rng.NextU64(p.value->size());
      const float analytic = p.grad->data()[i];
      const float orig = p.value->data()[i];
      p.value->data()[i] = orig + static_cast<float>(kEps);
      const double up = forward();
      p.value->data()[i] = orig - static_cast<float>(kEps);
      const double down = forward();
      p.value->data()[i] = orig;
      ExpectClose(analytic, (up - down) / (2 * kEps), "crf " + p.name);
    }
  }
}

TEST(GradCheck, Losses) {
  Rng rng(13);
  Mat pred(2, 3), target(2, 3);
  pred.InitGaussian(&rng, 1.f);
  for (size_t i = 0; i < target.size(); ++i) {
    target.data()[i] = rng.NextBernoulli(0.5) ? 1.f : 0.f;
  }
  Mat dpred;
  MseLoss(pred, target, &dpred);
  for (int i : {0, 3}) {
    const float orig = pred.data()[i];
    Mat scratch;
    pred.data()[i] = orig + static_cast<float>(kEps);
    const double up = MseLoss(pred, target, &scratch);
    pred.data()[i] = orig - static_cast<float>(kEps);
    const double down = MseLoss(pred, target, &scratch);
    pred.data()[i] = orig;
    ExpectClose(dpred.data()[i], (up - down) / (2 * kEps), "mse");
  }

  Mat dlogit;
  BceWithLogitsLoss(pred, target, &dlogit);
  for (int i : {1, 4}) {
    const float orig = pred.data()[i];
    Mat scratch;
    pred.data()[i] = orig + static_cast<float>(kEps);
    const double up = BceWithLogitsLoss(pred, target, &scratch);
    pred.data()[i] = orig - static_cast<float>(kEps);
    const double down = BceWithLogitsLoss(pred, target, &scratch);
    pred.data()[i] = orig;
    ExpectClose(dlogit.data()[i], (up - down) / (2 * kEps), "bce-logits");
  }
}

}  // namespace
}  // namespace emd
