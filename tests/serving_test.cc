// Chaos and drain tests for the TCP ingestion server, over real loopback
// sockets: torn frames, corrupt frames, oversized frames, slow-loris,
// disconnect mid-frame, injected read failures, and the graceful-drain /
// kill-and-resume path (SIGTERM mid-burst, checkpoint, zero accepted-tweet
// loss). The server runs on a dedicated thread per test; RequestDrain() is
// its only cross-thread entry point.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "util/failpoint.h"

namespace emd {
namespace net {
namespace {

/// In-process serving harness: a server on its own thread whose pipeline
/// records every processed tweet_id, plus optional checkpoint/DLQ hooks.
class ServingHarness {
 public:
  explicit ServingHarness(ServerOptions options = DefaultOptions()) {
    ServingPipeline pipeline;
    pipeline.process_batch = [this](std::span<const AnnotatedTweet> batch) {
      for (const AnnotatedTweet& tweet : batch) {
        processed_ids_.insert(tweet.tweet_id);
      }
      return Status::OK();
    };
    pipeline.checkpoint = [this] {
      ++checkpoints_;
      return Status::OK();
    };
    pipeline.dead_letter = [this](const AnnotatedTweet& tweet, const Status&) {
      dead_lettered_ids_.insert(tweet.tweet_id);
    };
    server_ = std::make_unique<Server>(std::move(pipeline), options);
  }

  static ServerOptions DefaultOptions() {
    ServerOptions options;
    options.queue_capacity = 64;
    options.batch_size = 8;
    options.batch_interval_nanos = 2 * kMillisecond;
    return options;
  }

  Status StartAndServe() {
    EMD_RETURN_IF_ERROR(server_->Start());
    serve_thread_ = std::thread([this] { serve_status_ = server_->Serve(); });
    return Status::OK();
  }

  /// Requests a drain and joins the serve thread; returns Serve()'s status.
  Status Shutdown() {
    server_->RequestDrain();
    if (serve_thread_.joinable()) serve_thread_.join();
    return serve_status_;
  }

  ~ServingHarness() {
    if (serve_thread_.joinable()) {
      server_->RequestDrain();
      serve_thread_.join();
    }
  }

  Server& server() { return *server_; }
  // Safe only after Shutdown() (happens-before via thread join).
  const std::set<int64_t>& processed_ids() const { return processed_ids_; }
  const std::set<int64_t>& dead_lettered_ids() const {
    return dead_lettered_ids_;
  }
  int checkpoints() const { return checkpoints_; }

 private:
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
  Status serve_status_;
  std::set<int64_t> processed_ids_;
  std::set<int64_t> dead_lettered_ids_;
  int checkpoints_ = 0;
};

Result<BlockingClient> ConnectTo(const Server& server,
                                 const std::string& client_id) {
  ClientOptions options;
  options.port = server.port();
  options.client_id = client_id;
  return BlockingClient::Connect(options);
}

TweetFrame MakeTweet(uint64_t seq, const std::string& text = "a tweet") {
  TweetFrame tweet;
  tweet.seq = seq;
  tweet.tweet_id = static_cast<int64_t>(seq);
  tweet.text = text;
  return tweet;
}

TEST(ServingTest, SubmitsAreAckedAndProcessed) {
  ServingHarness harness;
  ASSERT_TRUE(harness.StartAndServe().ok());
  Result<BlockingClient> client = ConnectTo(harness.server(), "c1");
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  for (uint64_t seq = 1; seq <= 20; ++seq) {
    Result<SubmitResult> result = client->Submit(MakeTweet(seq));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->accepted);
  }
  client->Close();

  ASSERT_TRUE(harness.Shutdown().ok());
  const ServerStats& stats = harness.server().stats();
  EXPECT_EQ(stats.tweets_accepted, 20u);
  EXPECT_EQ(stats.tweets_processed, 20u);
  EXPECT_EQ(harness.processed_ids().size(), 20u);
  EXPECT_EQ(stats.tweets_accepted,
            stats.tweets_processed + stats.tweets_dead_lettered);
}

TEST(ServingTest, TornFrameAcrossWritesStillDecodes) {
  ServingHarness harness;
  ASSERT_TRUE(harness.StartAndServe().ok());
  Result<BlockingClient> client = ConnectTo(harness.server(), "torn");
  ASSERT_TRUE(client.ok());

  // Send one TWEET frame split into single-byte writes with pauses: the
  // server must reassemble it and ACK.
  std::string bytes;
  AppendTweet(&bytes, MakeTweet(1, "reassembled across reads"));
  for (size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_TRUE(client->SendRaw(std::string_view(&bytes[i], 1)).ok());
    if (i % 7 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  Result<Frame> frame = client->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kAck);
  client->Close();
  ASSERT_TRUE(harness.Shutdown().ok());
  EXPECT_EQ(harness.server().stats().tweets_accepted, 1u);
}

TEST(ServingTest, CorruptFrameGetsByeAndOnlyThatConnectionDies) {
  ServingHarness harness;
  ASSERT_TRUE(harness.StartAndServe().ok());

  Result<BlockingClient> victim = ConnectTo(harness.server(), "victim");
  Result<BlockingClient> healthy = ConnectTo(harness.server(), "healthy");
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(healthy.ok());

  // A frame with a flipped CRC bit: the server answers BYE (with the decode
  // error) and closes only the offending connection.
  std::string bytes;
  AppendTweet(&bytes, MakeTweet(1));
  bytes.back() ^= 0x01;
  ASSERT_TRUE(victim->SendRaw(bytes).ok());
  Result<Frame> bye = victim->ReadFrame();
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  EXPECT_EQ(bye->type, FrameType::kBye);

  // The healthy connection keeps working.
  Result<SubmitResult> result = healthy->Submit(MakeTweet(2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->accepted);
  healthy->Close();

  ASSERT_TRUE(harness.Shutdown().ok());
  EXPECT_GE(harness.server().stats().corrupt_closed, 1u);
  EXPECT_EQ(harness.server().stats().tweets_accepted, 1u);
}

TEST(ServingTest, OversizedFrameIsRejectedNotBuffered) {
  ServingHarness harness;
  ASSERT_TRUE(harness.StartAndServe().ok());
  Result<BlockingClient> client = ConnectTo(harness.server(), "big");
  ASSERT_TRUE(client.ok());

  // Header claiming a 100 MiB payload: the server must reject on the header
  // alone (BYE + close), never try to buffer it.
  std::string bytes;
  AppendAck(&bytes, 1);  // any valid frame, then rewrite the length
  const uint32_t huge = 100u * 1024 * 1024;
  bytes[4] = static_cast<char>(huge & 0xff);
  bytes[5] = static_cast<char>((huge >> 8) & 0xff);
  bytes[6] = static_cast<char>((huge >> 16) & 0xff);
  bytes[7] = static_cast<char>((huge >> 24) & 0xff);
  ASSERT_TRUE(client->SendRaw(bytes.substr(0, 9)).ok());

  Result<Frame> bye = client->ReadFrame();
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  EXPECT_EQ(bye->type, FrameType::kBye);
  ASSERT_TRUE(harness.Shutdown().ok());
  EXPECT_GE(harness.server().stats().corrupt_closed, 1u);
}

TEST(ServingTest, SlowLorisConnectionIsClosed) {
  ServerOptions options = ServingHarness::DefaultOptions();
  options.idle_timeout_nanos = 100 * kMillisecond;
  ServingHarness harness(options);
  ASSERT_TRUE(harness.StartAndServe().ok());

  Result<BlockingClient> loris = ConnectTo(harness.server(), "loris");
  ASSERT_TRUE(loris.ok());
  // Trickle a partial frame, then stall: never a complete frame.
  std::string bytes;
  AppendTweet(&bytes, MakeTweet(1));
  ASSERT_TRUE(loris->SendRaw(bytes.substr(0, 6)).ok());

  // The idle guard closes the connection; the read sees EOF (Unavailable).
  Result<Frame> frame = loris->ReadFrame();
  EXPECT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsUnavailable())
      << frame.status().ToString();

  ASSERT_TRUE(harness.Shutdown().ok());
  EXPECT_GE(harness.server().stats().idle_closed, 1u);
}

TEST(ServingTest, DisconnectMidFrameIsANormalClose) {
  ServingHarness harness;
  ASSERT_TRUE(harness.StartAndServe().ok());
  {
    Result<BlockingClient> abrupt = ConnectTo(harness.server(), "abrupt");
    ASSERT_TRUE(abrupt.ok());
    std::string bytes;
    AppendTweet(&bytes, MakeTweet(1));
    ASSERT_TRUE(abrupt->SendRaw(bytes.substr(0, bytes.size() / 2)).ok());
    // Destructor closes the socket abruptly, mid-frame, without BYE.
  }
  // The server survives and keeps serving new clients.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Result<BlockingClient> after = ConnectTo(harness.server(), "after");
  ASSERT_TRUE(after.ok());
  Result<SubmitResult> result = after->Submit(MakeTweet(2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->accepted);
  after->Close();
  ASSERT_TRUE(harness.Shutdown().ok());
  EXPECT_EQ(harness.server().stats().tweets_accepted, 1u);
}

TEST(ServingTest, InjectedReadFailureDropsOnlyThatConnection) {
  ServingHarness harness;
  ASSERT_TRUE(harness.StartAndServe().ok());
  Result<BlockingClient> client = ConnectTo(harness.server(), "c1");
  ASSERT_TRUE(client.ok());
  Result<SubmitResult> ok_result = client->Submit(MakeTweet(1));
  ASSERT_TRUE(ok_result.ok());

  failpoint::EnableAfter("net.server.read",
                         Status::IoError("injected socket read failure"));
  std::string bytes;
  AppendTweet(&bytes, MakeTweet(2));
  ASSERT_TRUE(client->SendRaw(bytes).ok());
  Result<Frame> frame = client->ReadFrame();  // connection dropped
  EXPECT_FALSE(frame.ok());
  failpoint::DisableAll();

  // A new connection works again.
  Result<BlockingClient> fresh = ConnectTo(harness.server(), "c2");
  ASSERT_TRUE(fresh.ok());
  Result<SubmitResult> result = fresh->Submit(MakeTweet(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->accepted);
  fresh->Close();
  ASSERT_TRUE(harness.Shutdown().ok());
}

TEST(ServingTest, OverloadShedsWithExplicitRetryAfter) {
  ServerOptions options = ServingHarness::DefaultOptions();
  options.admission.tokens_per_second = 5;
  options.admission.burst_tokens = 3;
  ServingHarness harness(options);
  ASSERT_TRUE(harness.StartAndServe().ok());
  Result<BlockingClient> client = ConnectTo(harness.server(), "burst");
  ASSERT_TRUE(client.ok());

  int accepted = 0, rejected = 0;
  uint32_t last_hint = 0;
  for (uint64_t seq = 1; seq <= 10; ++seq) {
    Result<SubmitResult> result = client->Submit(MakeTweet(seq));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->accepted) {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_EQ(result->reason, RejectReason::kThrottled);
      last_hint = result->retry_after_ms;
    }
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
  EXPECT_GT(last_hint, 0u);  // every rejection carries a retry hint
  client->Close();
  ASSERT_TRUE(harness.Shutdown().ok());
  // Shed tweets were refused up front — they are not part of the accepted
  // count, so the zero-loss invariant is unaffected.
  const ServerStats& stats = harness.server().stats();
  EXPECT_EQ(stats.tweets_accepted,
            stats.tweets_processed + stats.tweets_dead_lettered);
  EXPECT_EQ(stats.tweets_rejected, static_cast<uint64_t>(rejected));
}

TEST(ServingTest, ExpiredDeadlineGoesToTheDeadLetterSink) {
  ServerOptions options = ServingHarness::DefaultOptions();
  // Slow cycles so a 1ms deadline reliably lapses in the queue.
  options.batch_size = 64;
  options.batch_interval_nanos = 100 * kMillisecond;
  ServingHarness harness(options);
  ASSERT_TRUE(harness.StartAndServe().ok());
  Result<BlockingClient> client = ConnectTo(harness.server(), "deadline");
  ASSERT_TRUE(client.ok());

  TweetFrame tweet = MakeTweet(1);
  tweet.deadline_ms = 1;
  Result<SubmitResult> result = client->Submit(tweet);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->accepted);  // accepted, then expires downstream
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  client->Close();

  ASSERT_TRUE(harness.Shutdown().ok());
  const ServerStats& stats = harness.server().stats();
  EXPECT_EQ(stats.tweets_accepted, 1u);
  EXPECT_EQ(stats.tweets_dead_lettered, 1u);
  EXPECT_EQ(stats.tweets_processed, 0u);
  EXPECT_EQ(harness.dead_lettered_ids().count(1), 1u);
}

TEST(ServingTest, GracefulDrainFlushesEverythingAndCheckpoints) {
  ServingHarness harness;
  ASSERT_TRUE(harness.StartAndServe().ok());
  Result<BlockingClient> client = ConnectTo(harness.server(), "drain");
  ASSERT_TRUE(client.ok());

  for (uint64_t seq = 1; seq <= 50; ++seq) {
    Result<SubmitResult> result = client->Submit(MakeTweet(seq));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->accepted);
  }
  // Drain while tweets are still staged/queued: every ACKed tweet must be
  // processed (or dead-lettered) before Serve returns.
  ASSERT_TRUE(harness.Shutdown().ok());
  const ServerStats& stats = harness.server().stats();
  EXPECT_EQ(stats.tweets_accepted, 50u);
  EXPECT_EQ(stats.tweets_accepted,
            stats.tweets_processed + stats.tweets_dead_lettered);
  EXPECT_EQ(harness.processed_ids().size() + harness.dead_lettered_ids().size(),
            50u);
  EXPECT_EQ(harness.checkpoints(), 1);
}

TEST(ServingTest, SigtermMidBurstDrainsWithZeroLossAndResumes) {
  // Phase 1: a server with the SIGTERM handler installed takes a burst;
  // raise(SIGTERM) mid-burst triggers the drain path through the real signal
  // machinery. The checkpoint callback records the processed set.
  std::set<int64_t> checkpointed;
  ServingHarness first;
  first.server().InstallDrainHandler();
  ASSERT_TRUE(first.StartAndServe().ok());
  Result<BlockingClient> client = ConnectTo(first.server(), "burst");
  ASSERT_TRUE(client.ok());

  for (uint64_t seq = 1; seq <= 25; ++seq) {
    Result<SubmitResult> result = client->Submit(MakeTweet(seq));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->accepted);
  }
  ASSERT_EQ(std::raise(SIGTERM), 0);  // kill mid-burst, via the real handler
  // After the signal the server drains; a late submission either gets an
  // explicit kDraining rejection or finds the connection closed with BYE —
  // never a silent drop. Both outcomes are fine; the invariant matters.
  (void)client->Submit(MakeTweet(26));
  Status drained = first.Shutdown();
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  const ServerStats& stats = first.server().stats();
  EXPECT_GT(stats.tweets_accepted, 0u);
  EXPECT_EQ(stats.tweets_accepted,
            stats.tweets_processed + stats.tweets_dead_lettered);
  EXPECT_EQ(first.processed_ids().size() + first.dead_lettered_ids().size(),
            static_cast<size_t>(stats.tweets_accepted));
  EXPECT_EQ(first.checkpoints(), 1);
  checkpointed = first.processed_ids();

  // Phase 2: resume — a fresh server picks up where the checkpoint left off
  // and the union of both runs covers every accepted tweet exactly once.
  ServingHarness second;
  ASSERT_TRUE(second.StartAndServe().ok());
  Result<BlockingClient> resumed = ConnectTo(second.server(), "burst");
  ASSERT_TRUE(resumed.ok());
  for (uint64_t seq = 41; seq <= 60; ++seq) {
    Result<SubmitResult> result = resumed->Submit(MakeTweet(seq));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->accepted);
  }
  resumed->Close();
  ASSERT_TRUE(second.Shutdown().ok());

  std::set<int64_t> all = checkpointed;
  for (int64_t id : second.processed_ids()) {
    EXPECT_EQ(all.count(id), 0u) << "tweet " << id << " processed twice";
    all.insert(id);
  }
  const uint64_t total_accepted =
      stats.tweets_accepted + second.server().stats().tweets_accepted;
  const size_t total_dead = first.dead_lettered_ids().size() +
                            second.dead_lettered_ids().size();
  EXPECT_EQ(all.size() + total_dead, static_cast<size_t>(total_accepted));
}

TEST(ServingTest, ResilienceSummarySurfacesAdmissionCounts) {
  // Satellite check at the serving seam: Globalizer's ResilienceSummary
  // reports the queue's admission/backpressure/shed split when the serving
  // queue is attached. (Uses the queue's stats directly; no model build.)
  IngestQueue queue({.capacity = 2});
  queue.RecordAdmissionRejected(3);
  EXPECT_EQ(queue.stats().admission_rejected, 3u);
}

}  // namespace
}  // namespace net
}  // namespace emd
