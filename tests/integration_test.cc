// End-to-end integration: a miniature FrameworkKit world (no cache) trains
// the PosTagger, a local system, the phrase embedder and the classifier, and
// the full framework must not be worse than local EMD alone on a stream.

#include <gtest/gtest.h>

#include "core/framework_kit.h"
#include "core/globalizer.h"
#include "eval/metrics.h"
#include "stream/datasets.h"

namespace emd {
namespace {

FrameworkKit& SmallKit() {
  static FrameworkKit* kit = [] {
    FrameworkKitOptions opt;
    opt.scale = 0.06;
    opt.training_tweets = 700;
    opt.use_cache = false;
    opt.seed = 13;
    return new FrameworkKit(opt);
  }();
  return *kit;
}

struct Outcome {
  PrfScores local;
  PrfScores global;
  GlobalizerOutput diag;
};

Outcome RunOn(SystemKind kind, const Dataset& stream) {
  FrameworkKit& kit = SmallKit();
  Outcome o;
  {
    GlobalizerOptions opt;
    opt.mode = GlobalizerOptions::Mode::kLocalOnly;
    Globalizer g(kit.system(kind), nullptr, nullptr, opt);
    o.local = EvaluateMentions(stream, g.Run(stream).value().mentions);
  }
  {
    Globalizer g(kit.system(kind), kit.phrase_embedder(kind), kit.classifier(kind),
                 {});
    o.diag = g.Run(stream).value();
    o.global = EvaluateMentions(stream, o.diag.mentions);
  }
  return o;
}

TEST(IntegrationTest, KitBuildsConsistentWorld) {
  FrameworkKit& kit = SmallKit();
  EXPECT_GT(kit.catalog().size(), 0u);
  EXPECT_GT(kit.gazetteer().size(), 0u);
  EXPECT_EQ(kit.training_corpus().size(), 700u);
  EXPECT_TRUE(kit.pos_tagger().trained());
  EXPECT_EQ(kit.classifier_input_dim(SystemKind::kNpChunker), 7);
  EXPECT_EQ(kit.classifier_input_dim(SystemKind::kAguilar), 101);
  EXPECT_EQ(kit.classifier_input_dim(SystemKind::kBertweet), 301);
  EXPECT_EQ(kit.phrase_embedder(SystemKind::kNpChunker), nullptr);
  EXPECT_NE(kit.phrase_embedder(SystemKind::kAguilar), nullptr);
}

TEST(IntegrationTest, TwitterNlpGlobalizerNotWorseThanLocal) {
  FrameworkKit& kit = SmallKit();
  Dataset stream = BuildD2(kit.catalog(), kit.suite_options());
  Outcome o = RunOn(SystemKind::kTwitterNlp, stream);
  EXPECT_GT(o.local.f1, 0.2) << "local system should function";
  // The framework must not collapse performance; at tiny scales repetition is
  // thin, so allow a small tolerance rather than demanding a gain.
  EXPECT_GE(o.global.f1, o.local.f1 - 0.05);
  EXPECT_GT(o.diag.num_candidates, 0);
}

TEST(IntegrationTest, DeepSystemEndToEnd) {
  FrameworkKit& kit = SmallKit();
  Dataset stream = BuildD1(kit.catalog(), kit.suite_options());
  Outcome o = RunOn(SystemKind::kBertweet, stream);
  EXPECT_GT(o.local.f1, 0.1);
  EXPECT_GE(o.global.f1, o.local.f1 - 0.05);
  // The phrase embedder path must have pooled embeddings of the right size.
  const auto report = kit.phrase_report(SystemKind::kBertweet);
  EXPECT_GT(report.epochs_run, 0);
  EXPECT_LT(report.best_validation_loss, 0.3);
}

TEST(IntegrationTest, ClassifierReportsPopulated) {
  FrameworkKit& kit = SmallKit();
  auto report = kit.classifier_report(SystemKind::kTwitterNlp);
  EXPECT_GT(report.num_train, 0);
  EXPECT_GT(report.best_validation_f1, 0.4);
}

}  // namespace
}  // namespace emd
